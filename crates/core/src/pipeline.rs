//! Pipeline orchestration: run the four kernels in order, time each, and
//! validate the results.
//!
//! "Each kernel in the pipeline must be fully completed before the next
//! kernel can begin" — the pipeline enforces that sequencing and owns the
//! working directory layout (`<dir>/k0` for generated files, `<dir>/k1` for
//! sorted files).

use std::path::{Path, PathBuf};

use crate::backend::Kernel2Output;
use crate::config::{PipelineConfig, ValidationLevel};
use crate::error::{Error, Result};
use crate::results::{
    Kernel0Result, Kernel1Result, Kernel2Result, Kernel3Result, PipelineResult, WorkloadResult,
};
use crate::timing::{KernelTiming, Stopwatch};
use crate::workload::Workload;
use crate::{kernel0, kernel3, validate, workload};

/// Observes pipeline progress kernel by kernel.
///
/// Long-lived callers (the `ppbench-serve` job workers, progress bars,
/// tracing) implement this to learn which kernel a run is currently in and
/// how each one performed, without waiting for the whole pipeline to
/// finish. Both methods default to no-ops, so implementors override only
/// what they need. Observers must be `Send + Sync`: the parallel backend
/// may call them from a run owned by another thread.
pub trait PipelineObserver: Send + Sync {
    /// Kernel `kernel` (0–3) is about to start.
    fn kernel_started(&self, _kernel: u8) {}
    /// Kernel `kernel` (0–3) finished with `timing`.
    fn kernel_finished(&self, _kernel: u8, _timing: &KernelTiming) {}
}

/// The do-nothing observer used by the plain [`Pipeline::run`] entry
/// points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {}

/// A configured pipeline bound to a working directory.
#[derive(Debug)]
pub struct Pipeline {
    cfg: PipelineConfig,
    work_dir: PathBuf,
}

impl Pipeline {
    /// Binds `cfg` to `work_dir` (created on demand; kernel files are
    /// written beneath it).
    pub fn new(cfg: PipelineConfig, work_dir: &Path) -> Self {
        Self {
            cfg,
            work_dir: work_dir.to_path_buf(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Directory kernel 0 writes into.
    pub fn k0_dir(&self) -> PathBuf {
        self.work_dir.join("k0")
    }

    /// Directory kernel 1 writes into.
    pub fn k1_dir(&self) -> PathBuf {
        self.work_dir.join("k1")
    }

    /// Runs all four kernels plus the configured validation.
    pub fn run(&self) -> Result<PipelineResult> {
        self.run_through(3)
    }

    /// Runs all four kernels, reporting progress to `observer`.
    pub fn run_with_observer(&self, observer: &dyn PipelineObserver) -> Result<PipelineResult> {
        self.run_through_with(3, observer)
    }

    /// Runs kernels `0..=last_kernel` (the spec allows kernels to "be run
    /// together or independently"); validation uses whatever ran.
    ///
    /// `last_kernel` must lie in `0..=3`; anything larger is rejected with
    /// [`Error::Config`] (the kernels are numbered 0–3 and there is nothing
    /// beyond PageRank to run).
    pub fn run_through(&self, last_kernel: u8) -> Result<PipelineResult> {
        self.run_through_with(last_kernel, &NoopObserver)
    }

    /// [`Pipeline::run_through`] with progress reported to `observer`.
    ///
    /// `last_kernel` must lie in `0..=3`, as for [`Pipeline::run_through`].
    pub fn run_through_with(
        &self,
        last_kernel: u8,
        observer: &dyn PipelineObserver,
    ) -> Result<PipelineResult> {
        if last_kernel > 3 {
            return Err(Error::Config(format!(
                "last_kernel must be in 0..=3 (kernels are numbered 0-3), got {last_kernel}"
            )));
        }
        let cfg = &self.cfg;
        let backend = cfg.variant.backend();

        // Kernel 0 — untimed by spec, measured for Figure 4. With an
        // input TSV configured, ingestion replaces generation and the
        // actual edge count `m` comes from the file, not the spec.
        observer.kernel_started(0);
        let sw = Stopwatch::start();
        let manifest0 = match &cfg.input_tsv {
            Some(path) => kernel0::ingest_tsv(cfg, path, &self.k0_dir())?,
            None => backend.kernel0(cfg, &self.k0_dir())?,
        };
        let m = manifest0.edges;
        let k0 = Kernel0Result {
            timing: sw.finish(m),
            edges: manifest0.edges,
            files: manifest0.files.len(),
            digest: manifest0.digest,
        };
        observer.kernel_finished(0, &k0.timing);

        let mut result = PipelineResult {
            config: cfg.describe(),
            scale: cfg.spec.scale(),
            edges: m,
            variant: cfg.variant.name(),
            workload: cfg.workload.name(),
            kernel0: Some(k0),
            kernel1: None,
            kernel2: None,
            kernel3: None,
            algo: None,
            validation: None,
        };

        let mut k2_output: Option<Kernel2Output> = None;
        if cfg.fused && last_kernel >= 2 {
            // Fused kernels 1+2: CSR built straight from the sorted-run
            // merge stream, no sorted file set on disk. The observer still
            // sees both kernels, with timings split at the run-seal
            // boundary. A fused run stopping at kernel 1 falls through to
            // the staged path — there is nothing to fuse with.
            observer.kernel_started(1);
            let fused = backend.kernel12_fused(cfg, &self.k0_dir(), &self.k1_dir())?;
            observer.kernel_finished(1, &fused.k1.timing);
            observer.kernel_started(2);
            observer.kernel_finished(2, &fused.k2.timing);
            result.kernel1 = Some(fused.k1);
            result.kernel2 = Some(fused.k2);
            k2_output = Some(fused.output);
        } else {
            if last_kernel >= 1 {
                observer.kernel_started(1);
                let sw = Stopwatch::start();
                let manifest1 = backend.kernel1(cfg, &self.k0_dir(), &self.k1_dir())?;
                let timing = sw.finish(m);
                observer.kernel_finished(1, &timing);
                result.kernel1 = Some(Kernel1Result {
                    timing,
                    digest: manifest1.digest,
                    sort_state: manifest1.sort_state,
                    out_of_core: cfg
                        .sort_budget_bytes
                        .is_some_and(|b| m.saturating_mul(ppbench_io::BYTES_PER_EDGE as u64) > b),
                });
            }
            if last_kernel >= 2 {
                observer.kernel_started(2);
                let sw = Stopwatch::start();
                let out = backend.kernel2(cfg, &self.k1_dir())?;
                let timing = sw.finish(m);
                observer.kernel_finished(2, &timing);
                result.kernel2 = Some(Kernel2Result {
                    timing,
                    stats: out.stats,
                });
                k2_output = Some(out);
            }
        }
        let mut algo_values: Option<Vec<u64>> = None;
        if last_kernel >= 3 {
            let Some(k2) = k2_output.as_ref() else {
                return Err(crate::Error::Contract(
                    "kernel 3 requires kernel 2 output".to_string(),
                ));
            };
            let matrix = &k2.matrix;
            observer.kernel_started(3);
            if cfg.workload == Workload::PageRank {
                let sw = Stopwatch::start();
                let run = backend.kernel3(cfg, matrix)?;
                // Kernel 3's work-item count is iterations × M ("20M divided
                // by the run time"), using the iterations actually performed.
                let timing = sw.finish(m * run.iterations as u64);
                observer.kernel_finished(3, &timing);
                let mass = kernel3::rank_mass(&run.ranks);
                result.kernel3 = Some(Kernel3Result {
                    timing,
                    ranks: run.ranks,
                    mass,
                    iterations: run.iterations,
                    final_delta: run.final_delta,
                });
            } else {
                let sw = Stopwatch::start();
                let out = workload::run_algo(cfg, matrix)?;
                let timing = sw.finish(out.work_items);
                observer.kernel_finished(3, &timing);
                result.algo = Some(WorkloadResult {
                    workload: cfg.workload.name(),
                    timing,
                    output_len: out.values.len(),
                    stat: out.stat,
                    stat_name: out.stat_name,
                    source: out.source,
                    checksum: out.checksum,
                });
                algo_values = Some(out.values);
            }
        }

        self.validate(&mut result, k2_output.as_ref(), m, algo_values.as_deref())?;
        Ok(result)
    }

    fn validate(
        &self,
        result: &mut PipelineResult,
        k2_output: Option<&Kernel2Output>,
        expected_edges: u64,
        algo_values: Option<&[u64]>,
    ) -> Result<()> {
        let cfg = &self.cfg;
        if cfg.validation == ValidationLevel::None {
            return Ok(());
        }
        let mut report = validate::check_invariants(
            expected_edges,
            cfg.spec.num_vertices(),
            result.kernel0.as_ref().map(|k| &k.digest),
            result.kernel1.as_ref().map(|k| &k.digest),
            result.kernel2.as_ref().map(|k| &k.stats),
            result.kernel3.as_ref().map(|k| k.ranks.as_slice()),
        );
        if let Some(out) = k2_output {
            report
                .checks
                .extend(validate::check_matrix(&out.matrix).checks);
        }
        if let (Some(values), Some(algo)) = (algo_values, &result.algo) {
            report.checks.extend(
                validate::check_workload_output(
                    algo.workload,
                    cfg.spec.num_vertices(),
                    values,
                    algo.stat,
                    algo.stat_name,
                )
                .checks,
            );
        }
        if cfg.validation == ValidationLevel::Eigenvector {
            if let (Some(out), Some(k3)) = (k2_output, &result.kernel3) {
                let eig = validate::check_eigenvector(
                    &out.matrix,
                    &k3.ranks,
                    cfg.damping,
                    cfg.iterations,
                );
                report.eigen_residual = eig.eigen_residual;
                report.checks.extend(eig.checks);
            }
        }
        let passed = report.passed();
        let detail = report.detail();
        result.validation = Some(report);
        if !passed {
            return Err(Error::Validation(detail));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use ppbench_io::tempdir::TempDir;

    fn base(scale: u32) -> crate::PipelineConfigBuilder {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(11)
    }

    #[test]
    fn full_run_with_invariant_validation() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let result = Pipeline::new(base(7).build(), td.path()).run().unwrap();
        assert!(result.kernel0.is_some());
        assert!(result.kernel1.is_some());
        assert!(result.kernel2.is_some());
        assert!(result.kernel3.is_some());
        let v = result.validation.as_ref().unwrap();
        assert!(v.passed(), "{}", v.detail());
        let summary = result.summary();
        assert!(summary.contains("K3 pagerank"), "{summary}");
    }

    #[test]
    fn eigenvector_validation_passes_on_real_run() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let cfg = base(6)
            .add_diagonal_to_empty(true)
            .validation(crate::ValidationLevel::Eigenvector)
            .build();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        let v = result.validation.as_ref().unwrap();
        assert!(v.passed(), "{}", v.detail());
        assert!(v.eigen_residual.is_some());
    }

    #[test]
    fn partial_run_stops_after_requested_kernel() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let result = Pipeline::new(base(6).build(), td.path())
            .run_through(1)
            .unwrap();
        assert!(result.kernel0.is_some());
        assert!(result.kernel1.is_some());
        assert!(result.kernel2.is_none());
        assert!(result.kernel3.is_none());
        assert!(result.validation.as_ref().unwrap().passed());
    }

    #[test]
    fn all_variants_run_end_to_end() {
        for variant in Variant::ALL {
            let td = TempDir::new("ppbench-pipe").unwrap();
            let cfg = base(6).variant(variant).build();
            let result = Pipeline::new(cfg, td.path()).run().unwrap();
            assert!(
                result.validation.as_ref().unwrap().passed(),
                "{}: {}",
                variant.name(),
                result.validation.as_ref().unwrap().detail()
            );
        }
    }

    #[test]
    fn fused_run_matches_staged_bit_for_bit() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let staged = Pipeline::new(base(7).build(), &td.join("staged"))
            .run()
            .unwrap();
        let fused = Pipeline::new(base(7).fused(true).build(), &td.join("fused"))
            .run()
            .unwrap();
        assert!(fused.validation.as_ref().unwrap().passed());
        let (s2, f2) = (staged.kernel2.unwrap(), fused.kernel2.unwrap());
        assert_eq!(s2.stats, f2.stats);
        // Same filter funnel, same serial kernel 3 ⇒ identical ranks.
        assert_eq!(staged.kernel3.unwrap().ranks, fused.kernel3.unwrap().ranks);
        // No sorted file set is materialized on the fused path.
        assert!(!td
            .join("fused")
            .join("k1")
            .join(ppbench_io::MANIFEST_NAME)
            .exists());
    }

    #[test]
    fn fused_observer_still_sees_both_kernels_in_order() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<(u8, bool)>>);
        impl PipelineObserver for Recorder {
            fn kernel_started(&self, k: u8) {
                self.0.lock().unwrap().push((k, false));
            }
            fn kernel_finished(&self, k: u8, _timing: &KernelTiming) {
                self.0.lock().unwrap().push((k, true));
            }
        }

        let td = TempDir::new("ppbench-pipe").unwrap();
        let rec = Recorder::default();
        Pipeline::new(base(6).fused(true).build(), td.path())
            .run_with_observer(&rec)
            .unwrap();
        let events = rec.0.into_inner().unwrap();
        let expected: Vec<(u8, bool)> = (0..4u8).flat_map(|k| [(k, false), (k, true)]).collect();
        assert_eq!(events, expected);
    }

    #[test]
    fn fused_with_last_kernel_one_falls_back_to_staged_sort() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let result = Pipeline::new(base(6).fused(true).build(), td.path())
            .run_through(1)
            .unwrap();
        assert!(result.kernel1.is_some());
        assert!(result.kernel2.is_none());
        assert!(td.join("k1").join(ppbench_io::MANIFEST_NAME).exists());
    }

    #[test]
    fn fused_out_of_core_run_validates() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let cfg = base(6).fused(true).sort_budget_bytes(64 * 16).build();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        assert!(result.kernel1.as_ref().unwrap().out_of_core);
        assert!(result.validation.as_ref().unwrap().passed());
    }

    #[test]
    fn out_of_core_kernel1_works_in_pipeline() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let cfg = base(6).sort_budget_bytes(64 * 16).build();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        assert!(result.kernel1.as_ref().unwrap().out_of_core);
        assert!(result.validation.as_ref().unwrap().passed());
    }

    #[test]
    fn run_through_rejects_kernel_out_of_range() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let err = Pipeline::new(base(5).build(), td.path())
            .run_through(4)
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
        assert!(err.to_string().contains("0..=3"), "{err}");
    }

    #[test]
    fn observer_sees_every_kernel_in_order() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<(u8, bool)>>);
        impl PipelineObserver for Recorder {
            fn kernel_started(&self, k: u8) {
                self.0.lock().unwrap().push((k, false));
            }
            fn kernel_finished(&self, k: u8, timing: &KernelTiming) {
                assert!(timing.seconds >= 0.0);
                self.0.lock().unwrap().push((k, true));
            }
        }

        let td = TempDir::new("ppbench-pipe").unwrap();
        let rec = Recorder::default();
        Pipeline::new(base(6).build(), td.path())
            .run_with_observer(&rec)
            .unwrap();
        let events = rec.0.into_inner().unwrap();
        let expected: Vec<(u8, bool)> = (0..4u8).flat_map(|k| [(k, false), (k, true)]).collect();
        assert_eq!(events, expected);
    }

    #[test]
    fn algo_workloads_run_end_to_end_and_validate() {
        for w in [
            crate::Workload::Bfs,
            crate::Workload::Cc,
            crate::Workload::Sssp,
            crate::Workload::Tc,
        ] {
            let td = TempDir::new("ppbench-pipe").unwrap();
            let cfg = base(6).workload(w).build();
            let result = Pipeline::new(cfg, td.path()).run().unwrap();
            assert!(result.kernel3.is_none(), "{}: no PageRank ran", w.name());
            let algo = result.algo.as_ref().unwrap();
            assert_eq!(algo.workload, w.name());
            if w != crate::Workload::Tc {
                assert!(algo.stat >= 1, "{}", w.name());
            }
            let v = result.validation.as_ref().unwrap();
            assert!(v.passed(), "{}: {}", w.name(), v.detail());
            assert!(
                result.summary().contains(&format!("K3 {}", w.name())),
                "{}",
                result.summary()
            );
        }
    }

    #[test]
    fn algo_workload_is_deterministic_across_runs_and_variants() {
        let run = |variant: Variant| {
            let td = TempDir::new("ppbench-pipe").unwrap();
            let cfg = base(6)
                .workload(crate::Workload::Bfs)
                .variant(variant)
                .build();
            let result = Pipeline::new(cfg, td.path()).run().unwrap();
            let algo = result.algo.unwrap();
            (algo.checksum, algo.stat, algo.source)
        };
        let a = run(Variant::Optimized);
        let b = run(Variant::Optimized);
        assert_eq!(a, b, "same config must be bit-identical");
        let naive = run(Variant::Naive);
        assert_eq!(a, naive, "serial oracle must agree with optimized");
    }

    /// A bidirectional triangle 0↔1↔2↔0 (in-degree 2 each, so kernel 2's
    /// leaf filter keeps it) plus a supernode column 7 (in-degree 3, so it
    /// absorbs the supernode filter).
    fn filter_proof_tsv(dir: &std::path::Path) -> std::path::PathBuf {
        let tsv = dir.join("input.tsv");
        let mut body = String::from("# test graph\n");
        for (u, v) in [
            (0u32, 1u32),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 0),
            (0, 2),
            (4, 7),
            (5, 7),
            (6, 7),
        ] {
            body.push_str(&format!("{u}\t{v}\n"));
        }
        std::fs::write(&tsv, body).unwrap();
        tsv
    }

    #[test]
    fn tsv_input_feeds_the_pipeline() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let tsv = filter_proof_tsv(td.path());
        let cfg = base(5).input_tsv(&tsv).build();
        let result = Pipeline::new(cfg, td.join("work").as_path()).run().unwrap();
        assert_eq!(result.edges, 9, "M comes from the file, not the spec");
        assert_eq!(result.kernel0.as_ref().unwrap().edges, 9);
        let v = result.validation.as_ref().unwrap();
        assert!(v.passed(), "{}", v.detail());
        assert!(
            result.kernel3.is_some(),
            "PageRank ran on the ingested graph"
        );
    }

    #[test]
    fn tsv_input_composes_with_algo_workloads() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let tsv = filter_proof_tsv(td.path());
        let cfg = base(5)
            .input_tsv(&tsv)
            .workload(crate::Workload::Tc)
            .build();
        let result = Pipeline::new(cfg, td.join("work").as_path()).run().unwrap();
        let algo = result.algo.as_ref().unwrap();
        assert_eq!(
            algo.stat, 1,
            "the bidirectional triangle survives the kernel-2 filter"
        );
        assert!(result.validation.as_ref().unwrap().passed());
    }

    #[test]
    fn validation_none_skips_reporting() {
        let td = TempDir::new("ppbench-pipe").unwrap();
        let cfg = base(5).validation(crate::ValidationLevel::None).build();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        assert!(result.validation.is_none());
    }
}
