//! Kernel 3 — PageRank: shared mathematical steps.
//!
//! From the spec (§IV.D and the appendix):
//!
//! ```text
//! r = rand(1, N);  r = r ./ norm(r, 1);
//! for 20 iterations:
//!     r = ((c .* r) * A) + ((1 - c) .* sum(r, 2) ./ N)
//! ```
//!
//! The §IV.D body of the paper drops the `./ N` when "simplifying"; the
//! appendix and the definition of the damping vector
//! `a = ones(1,N).*(1-c)./N` both retain it. We implement the appendix form
//! (the correct stochastic update) and note the discrepancy in
//! EXPERIMENTS.md.
//!
//! Every backend calls [`init_ranks`] with the same derived seed, so all
//! four produce comparable rank vectors; what differs is the
//! implementation of the `r * A` product, supplied as a closure.

use ppbench_prng::{Rng64, SeedableRng64, SplitMix64, Xoshiro256pp};
use ppbench_sparse::vector;

/// Derives the rank-initialization seed from the master seed (kept separate
/// from the generator's streams).
fn rank_seed(master: u64) -> u64 {
    SplitMix64::mix(master ^ 0x5241_4E4B_5345_4544) // "RANKSEED"
}

/// `r = rand(1, N); r = r ./ norm(r, 1)` — the spec's initialization.
pub fn init_ranks(n: u64, master_seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(rank_seed(master_seed));
    let mut r: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    vector::normalize_l1(&mut r);
    r
}

/// One PageRank update: `r ← c·(r·A) + (1−c)·sum(r)/N`, with the `r·A`
/// product supplied by the caller.
pub fn step(r: &[f64], multiply: impl FnOnce(&[f64]) -> Vec<f64>, damping: f64) -> Vec<f64> {
    let n = r.len() as f64;
    let teleport = (1.0 - damping) * vector::sum(r) / n;
    let mut next = multiply(r);
    for x in next.iter_mut() {
        *x = damping * *x + teleport;
    }
    next
}

/// Runs `iterations` PageRank updates from `r0` (the spec's fixed-count,
/// dangling-mass-leaking mode).
pub fn pagerank(
    r0: Vec<f64>,
    mut multiply: impl FnMut(&[f64]) -> Vec<f64>,
    damping: f64,
    iterations: u32,
) -> Vec<f64> {
    let mut r = r0;
    for _ in 0..iterations {
        r = step(&r, &mut multiply, damping);
    }
    r
}

/// How the iteration treats rows with no out-edges. The benchmark spec
/// *omits* any correction ("the additional term for the dangling nodes in
/// the iterative formulation has been omitted"); the appendix names the
/// classical alternatives, implemented here as extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DanglingStrategy {
    /// The spec: dangling mass leaks out of the system each iteration.
    #[default]
    Omit,
    /// Strongly preferential PageRank: the mass sitting on dangling rows is
    /// redistributed uniformly each iteration (`+ c·(Σ_dangling r_u)/N`),
    /// making the chain exactly stochastic.
    Redistribute,
    /// Sink PageRank: dangling rows keep their damped mass in place
    /// (equivalent to a self-loop added at iteration time rather than in
    /// the matrix).
    Sink,
}

impl DanglingStrategy {
    /// Stable name for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            DanglingStrategy::Omit => "omit",
            DanglingStrategy::Redistribute => "redistribute",
            DanglingStrategy::Sink => "sink",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "omit" => Some(Self::Omit),
            "redistribute" | "strong" => Some(Self::Redistribute),
            "sink" => Some(Self::Sink),
            _ => None,
        }
    }
}

/// Full kernel-3 options, superset of the benchmark spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankOptions {
    /// Damping factor `c`.
    pub damping: f64,
    /// Maximum iterations (the spec runs exactly this many).
    pub max_iterations: u32,
    /// Dangling-row treatment.
    pub dangling: DanglingStrategy,
    /// When set, stop early once the L1 change between iterations drops
    /// below this ("in a real application, PageRank would be run until the
    /// result passes a convergence test").
    pub tolerance: Option<f64>,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            damping: crate::DAMPING,
            max_iterations: crate::ITERATIONS,
            dangling: DanglingStrategy::Omit,
            tolerance: None,
        }
    }
}

/// Outcome of a kernel-3 run under [`PageRankOptions`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankRun {
    /// The final rank vector.
    pub ranks: Vec<f64>,
    /// Iterations actually performed (< `max_iterations` only when a
    /// tolerance was set and met).
    pub iterations: u32,
    /// L1 change of the final iteration.
    pub final_delta: f64,
}

/// One update under a dangling strategy. `dangling_rows[u]` flags rows
/// with no out-edges in the (filtered, normalized) matrix.
pub fn step_with(
    r: &[f64],
    multiply: impl FnOnce(&[f64]) -> Vec<f64>,
    dangling_rows: &[bool],
    opts: &PageRankOptions,
) -> Vec<f64> {
    let n = r.len() as f64;
    let c = opts.damping;
    let teleport = (1.0 - c) * vector::sum(r) / n;
    let dangling_mass: f64 = match opts.dangling {
        DanglingStrategy::Omit => 0.0,
        _ => r
            .iter()
            .zip(dangling_rows)
            .filter(|&(_, &d)| d)
            .map(|(&x, _)| x)
            .sum(),
    };
    let mut next = multiply(r);
    match opts.dangling {
        DanglingStrategy::Omit => {
            for x in next.iter_mut() {
                *x = c * *x + teleport;
            }
        }
        DanglingStrategy::Redistribute => {
            let spread = c * dangling_mass / n;
            for x in next.iter_mut() {
                *x = c * *x + teleport + spread;
            }
        }
        DanglingStrategy::Sink => {
            for ((x, &r_u), &d) in next.iter_mut().zip(r).zip(dangling_rows) {
                *x = c * *x + teleport + if d { c * r_u } else { 0.0 };
            }
        }
    }
    next
}

/// Runs kernel 3 under full options: dangling strategy and optional
/// convergence stopping.
///
/// # Panics
///
/// Panics if `dangling_rows.len() != r0.len()`.
pub fn run(
    r0: Vec<f64>,
    mut multiply: impl FnMut(&[f64]) -> Vec<f64>,
    dangling_rows: &[bool],
    opts: &PageRankOptions,
) -> PageRankRun {
    assert_eq!(
        dangling_rows.len(),
        r0.len(),
        "dangling mask length mismatch"
    );
    let mut r = r0;
    let mut delta = f64::INFINITY;
    let mut done = 0;
    for i in 1..=opts.max_iterations {
        let next = step_with(&r, &mut multiply, dangling_rows, opts);
        delta = vector::l1_distance(&next, &r);
        r = next;
        done = i;
        if opts.tolerance.is_some_and(|tol| delta < tol) {
            break;
        }
    }
    PageRankRun {
        ranks: r,
        iterations: done,
        final_delta: delta,
    }
}

/// The L1 mass retained after a run. With no dangling rows this stays at
/// 1.0; dangling rows leak `c·(their mass)` per iteration, which the
/// benchmark tolerates (the spec explicitly omits the dangling-node
/// correction term).
pub fn rank_mass(r: &[f64]) -> f64 {
    vector::sum(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_sparse::{eigen, ops, spmv, Coo, Csr};

    fn ring(n: u64) -> Csr<f64> {
        let mut coo = Coo::<u64>::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1);
        }
        ops::normalize_rows(&coo.compress())
    }

    #[test]
    fn init_is_normalized_and_deterministic() {
        let r1 = init_ranks(100, 7);
        let r2 = init_ranks(100, 7);
        let r3 = init_ranks(100, 8);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
        assert!((vector::norm_l1(&r1) - 1.0).abs() < 1e-12);
        assert!(r1.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn mass_is_conserved_without_dangling_rows() {
        let a = ring(8);
        let r0 = init_ranks(8, 1);
        let r = pagerank(r0, |x| spmv::vxm(x, &a), 0.85, 20);
        assert!((rank_mass(&r) - 1.0).abs() < 1e-9, "mass {}", rank_mass(&r));
    }

    #[test]
    fn symmetric_ring_converges_to_uniform() {
        let a = ring(6);
        let r0 = init_ranks(6, 3);
        let r = pagerank(r0, |x| spmv::vxm(x, &a), 0.85, 200);
        for &x in &r {
            assert!((x - 1.0 / 6.0).abs() < 1e-9, "rank {x} not uniform");
        }
    }

    #[test]
    fn matches_eigenvector_of_pagerank_matrix() {
        // The paper's validation: after enough iterations, r equals the
        // dominant eigenvector of c·Aᵀ + (1−c)/N·𝟙 (L1-normalized).
        let mut coo = Coo::<u64>::new(5, 5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0), (0, 3)] {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        let at = a.transpose();
        let r = pagerank(init_ranks(5, 2), |x| spmv::vxm(x, &a), 0.85, 300);
        let mut r_norm = r.clone();
        vector::normalize_l1(&mut r_norm);
        let eig = eigen::pagerank_eigenvector(&at, 0.85, 5000, 1e-14);
        assert!(eig.converged);
        assert!(
            vector::l1_distance(&r_norm, &eig.vector) < 1e-10,
            "iterated {r_norm:?} vs eigenvector {:?}",
            eig.vector
        );
    }

    #[test]
    fn dangling_rows_leak_mass() {
        // Single edge 0→1, vertex 1 dangles: mass decays.
        let mut coo = Coo::<u64>::new(2, 2);
        coo.push(0, 1, 1);
        let a = ops::normalize_rows(&coo.compress());
        let r = pagerank(init_ranks(2, 1), |x| spmv::vxm(x, &a), 0.85, 20);
        assert!(rank_mass(&r) < 1.0);
        assert!(rank_mass(&r) > 0.0);
    }

    #[test]
    fn damping_zero_limit_is_uniform_teleport() {
        // c → 0 gives r = sum(r)/N everywhere after one step.
        let a = ring(4);
        let r0 = vec![0.4, 0.3, 0.2, 0.1];
        let r = step(&r0, |x| spmv::vxm(x, &a), 1e-12);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn redistribute_conserves_mass_with_dangling_rows() {
        // 0→1, vertex 1 dangles.
        let mut coo = Coo::<u64>::new(2, 2);
        coo.push(0, 1, 1);
        let a = ops::normalize_rows(&coo.compress());
        let dangling = [false, true];
        let opts = PageRankOptions {
            dangling: DanglingStrategy::Redistribute,
            ..Default::default()
        };
        let out = run(init_ranks(2, 1), |x| spmv::vxm(x, &a), &dangling, &opts);
        assert_eq!(out.iterations, 20);
        assert!(
            (rank_mass(&out.ranks) - 1.0).abs() < 1e-12,
            "strongly preferential PageRank conserves mass: {}",
            rank_mass(&out.ranks)
        );
    }

    #[test]
    fn sink_strategy_conserves_mass_and_favors_sinks() {
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(0, 1, 1);
        coo.push(0, 2, 1);
        coo.push(1, 2, 1); // vertex 2 is a sink
        let a = ops::normalize_rows(&coo.compress());
        let dangling = [false, false, true];
        let opts = PageRankOptions {
            dangling: DanglingStrategy::Sink,
            max_iterations: 100,
            ..Default::default()
        };
        let out = run(init_ranks(3, 1), |x| spmv::vxm(x, &a), &dangling, &opts);
        assert!((rank_mass(&out.ranks) - 1.0).abs() < 1e-12);
        assert!(
            out.ranks[2] > out.ranks[0] && out.ranks[2] > out.ranks[1],
            "the sink should accumulate the most mass: {:?}",
            out.ranks
        );
    }

    #[test]
    fn sink_equals_diagonal_repair_in_the_matrix() {
        // Adding self-loops in the matrix (the §V kernel-2 repair) and the
        // Sink strategy at iteration time are the same Markov chain.
        let mut coo = Coo::<u64>::new(4, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            coo.push(u, v, 1);
        }
        let counts = coo.compress();
        let plain = ops::normalize_rows(&counts);
        let dangling = ops::empty_rows(&plain);
        let repaired = ops::normalize_rows(&ops::add_diagonal_where(
            &counts,
            |i| dangling[i as usize],
            1,
        ));
        let opts_sink = PageRankOptions {
            dangling: DanglingStrategy::Sink,
            max_iterations: 30,
            ..Default::default()
        };
        let opts_omit = PageRankOptions {
            max_iterations: 30,
            ..Default::default()
        };
        let a = run(
            init_ranks(4, 2),
            |x| spmv::vxm(x, &plain),
            &dangling,
            &opts_sink,
        );
        let b = run(
            init_ranks(4, 2),
            |x| spmv::vxm(x, &repaired),
            &[false; 4],
            &opts_omit,
        );
        for i in 0..4 {
            assert!(
                (a.ranks[i] - b.ranks[i]).abs() < 1e-12,
                "sink vs repaired diverge at {i}: {} vs {}",
                a.ranks[i],
                b.ranks[i]
            );
        }
    }

    #[test]
    fn omit_strategy_via_run_matches_plain_pagerank() {
        let a = ring(6);
        let opts = PageRankOptions::default();
        let via_run = run(init_ranks(6, 9), |x| spmv::vxm(x, &a), &[false; 6], &opts);
        let plain = pagerank(init_ranks(6, 9), |x| spmv::vxm(x, &a), 0.85, 20);
        assert_eq!(via_run.ranks, plain);
        assert_eq!(via_run.iterations, 20);
    }

    #[test]
    fn convergence_mode_stops_early() {
        let a = ring(8);
        let opts = PageRankOptions {
            max_iterations: 10_000,
            tolerance: Some(1e-12),
            ..Default::default()
        };
        let out = run(init_ranks(8, 3), |x| spmv::vxm(x, &a), &[false; 8], &opts);
        assert!(out.iterations < 10_000, "never converged");
        assert!(out.final_delta < 1e-12);
        // Converged to uniform on the symmetric ring.
        for &x in &out.ranks {
            assert!((x - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_strategy_names_roundtrip() {
        for s in [
            DanglingStrategy::Omit,
            DanglingStrategy::Redistribute,
            DanglingStrategy::Sink,
        ] {
            assert_eq!(DanglingStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(DanglingStrategy::parse("vanish"), None);
    }

    #[test]
    fn step_is_linear_in_r() {
        let a = ring(5);
        let r: Vec<f64> = vec![0.1, 0.3, 0.2, 0.25, 0.15];
        let doubled: Vec<f64> = r.iter().map(|x| x * 2.0).collect();
        let s1 = step(&r, |x| spmv::vxm(x, &a), 0.85);
        let s2 = step(&doubled, |x| spmv::vxm(x, &a), 0.85);
        for i in 0..5 {
            assert!((s2[i] - 2.0 * s1[i]).abs() < 1e-12);
        }
    }
}
