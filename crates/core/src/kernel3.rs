//! Kernel 3 — PageRank: shared mathematical steps.
//!
//! From the spec (§IV.D and the appendix):
//!
//! ```text
//! r = rand(1, N);  r = r ./ norm(r, 1);
//! for 20 iterations:
//!     r = ((c .* r) * A) + ((1 - c) .* sum(r, 2) ./ N)
//! ```
//!
//! The §IV.D body of the paper drops the `./ N` when "simplifying"; the
//! appendix and the definition of the damping vector
//! `a = ones(1,N).*(1-c)./N` both retain it. We implement the appendix form
//! (the correct stochastic update) and note the discrepancy in
//! EXPERIMENTS.md.
//!
//! Every backend calls [`init_ranks`] with the same derived seed, so all
//! four produce comparable rank vectors; what differs is the
//! implementation of the `r * A` product, supplied as a closure.
//!
//! # The hot path
//!
//! The iteration driver is [`run_into`]: two rank buffers allocated once
//! and ping-ponged (`std::mem::swap`) with zero O(N) allocation per
//! iteration, a dangling-row **index list** precomputed once
//! ([`DanglingInfo`]) instead of a bool-mask scan per iteration, and the
//! running mass carried from one iteration's epilogue into the next
//! iteration's teleport term instead of re-summing the rank vector. The
//! backend supplies a *stepper* closure that writes the new ranks into the
//! provided buffer and reports the L1 delta and new mass — the serial
//! backends wrap a plain multiply via [`apply_epilogue`]; the parallel
//! backend plugs in `ppbench_sparse::spmv::step_fused`, which does
//! multiply + epilogue + delta in one sweep.
//!
//! [`run`] and [`step_with`] remain as compatibility wrappers and are
//! bit-identical to their historical behavior: the carried mass
//! accumulates in the same flat order `vector::sum` uses, and
//! [`DanglingInfo::mass`] adds ranks in the same ascending-index order the
//! old masked scan did.

use ppbench_prng::{Rng64, SeedableRng64, SplitMix64, Xoshiro256pp};
use ppbench_sparse::vector;

pub use ppbench_sparse::spmv::{StepCoeffs, StepOutcome};

/// Derives the rank-initialization seed from the master seed (kept separate
/// from the generator's streams).
fn rank_seed(master: u64) -> u64 {
    SplitMix64::mix(master ^ 0x5241_4E4B_5345_4544) // "RANKSEED"
}

/// `r = rand(1, N); r = r ./ norm(r, 1)` — the spec's initialization.
pub fn init_ranks(n: u64, master_seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(rank_seed(master_seed));
    let mut r: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    vector::normalize_l1(&mut r);
    r
}

/// One PageRank update: `r ← c·(r·A) + (1−c)·sum(r)/N`, with the `r·A`
/// product supplied by the caller.
pub fn step(r: &[f64], multiply: impl FnOnce(&[f64]) -> Vec<f64>, damping: f64) -> Vec<f64> {
    let n = r.len() as f64;
    let teleport = (1.0 - damping) * vector::sum(r) / n;
    let mut next = multiply(r);
    for x in next.iter_mut() {
        *x = damping * *x + teleport;
    }
    next
}

/// Runs `iterations` PageRank updates from `r0` (the spec's fixed-count,
/// dangling-mass-leaking mode).
pub fn pagerank(
    r0: Vec<f64>,
    mut multiply: impl FnMut(&[f64]) -> Vec<f64>,
    damping: f64,
    iterations: u32,
) -> Vec<f64> {
    let mut r = r0;
    for _ in 0..iterations {
        r = step(&r, &mut multiply, damping);
    }
    r
}

/// How the iteration treats rows with no out-edges. The benchmark spec
/// *omits* any correction ("the additional term for the dangling nodes in
/// the iterative formulation has been omitted"); the appendix names the
/// classical alternatives, implemented here as extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DanglingStrategy {
    /// The spec: dangling mass leaks out of the system each iteration.
    #[default]
    Omit,
    /// Strongly preferential PageRank: the mass sitting on dangling rows is
    /// redistributed uniformly each iteration (`+ c·(Σ_dangling r_u)/N`),
    /// making the chain exactly stochastic.
    Redistribute,
    /// Sink PageRank: dangling rows keep their damped mass in place
    /// (equivalent to a self-loop added at iteration time rather than in
    /// the matrix).
    Sink,
}

impl DanglingStrategy {
    /// Stable name for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            DanglingStrategy::Omit => "omit",
            DanglingStrategy::Redistribute => "redistribute",
            DanglingStrategy::Sink => "sink",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "omit" => Some(Self::Omit),
            "redistribute" | "strong" => Some(Self::Redistribute),
            "sink" => Some(Self::Sink),
            _ => None,
        }
    }
}

/// Full kernel-3 options, superset of the benchmark spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankOptions {
    /// Damping factor `c`.
    pub damping: f64,
    /// Maximum iterations (the spec runs exactly this many).
    pub max_iterations: u32,
    /// Dangling-row treatment.
    pub dangling: DanglingStrategy,
    /// When set, stop early once the L1 change between iterations drops
    /// below this ("in a real application, PageRank would be run until the
    /// result passes a convergence test").
    pub tolerance: Option<f64>,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            damping: crate::DAMPING,
            max_iterations: crate::ITERATIONS,
            dangling: DanglingStrategy::Omit,
            tolerance: None,
        }
    }
}

/// Outcome of a kernel-3 run under [`PageRankOptions`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankRun {
    /// The final rank vector.
    pub ranks: Vec<f64>,
    /// Iterations actually performed (< `max_iterations` only when a
    /// tolerance was set and met).
    pub iterations: u32,
    /// L1 change of the final iteration.
    pub final_delta: f64,
}

/// Dangling-row structure precomputed once per run: the ascending index
/// list (what the per-iteration mass reduction walks — touching only the
/// dangling entries instead of scanning a full bool mask) plus the dense
/// mask (what the Sink epilogue and the fused kernels index by row).
#[derive(Debug, Clone)]
pub struct DanglingInfo {
    indices: Vec<usize>,
    mask: Vec<bool>,
}

impl DanglingInfo {
    /// Builds from a dense dangling-row mask (`ops::empty_rows` output).
    pub fn from_mask(mask: &[bool]) -> Self {
        let indices = mask
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| i)
            .collect();
        Self {
            indices,
            mask: mask.to_vec(),
        }
    }

    /// The dense mask, indexed by row.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Ascending indices of the dangling rows.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of dangling rows.
    pub fn count(&self) -> usize {
        self.indices.len()
    }

    /// Total rank mass sitting on the dangling rows. Adds in ascending
    /// index order — the same addition sequence as the historical masked
    /// flat scan, so results are bit-identical to it.
    pub fn mass(&self, r: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &i in &self.indices {
            acc += r[i];
        }
        acc
    }
}

/// Builds the per-iteration [`StepCoeffs`] from the carried mass and the
/// dangling structure — the scalar prologue every stepper shares.
fn step_coeffs<'a>(
    mass: f64,
    r: &[f64],
    dangling: &'a DanglingInfo,
    opts: &PageRankOptions,
) -> StepCoeffs<'a> {
    let n = r.len() as f64;
    let c = opts.damping;
    let teleport = (1.0 - c) * mass / n;
    let (spread, sink) = match opts.dangling {
        DanglingStrategy::Omit => (0.0, None),
        DanglingStrategy::Redistribute => (c * dangling.mass(r) / n, None),
        DanglingStrategy::Sink => (0.0, Some(dangling.mask())),
    };
    StepCoeffs {
        damping: c,
        teleport,
        spread,
        sink,
    }
}

/// Applies the PageRank epilogue to a raw product in place and reports the
/// L1 delta and new mass, accumulated during the same sweep.
///
/// `next` holds `r * A` on entry and the new rank vector on exit. The
/// per-element expressions and the flat accumulation order match the
/// historical `step_with` loops exactly, so serial results are
/// bit-identical; in particular the delta accumulator adds in the same
/// sequence as `vector::l1_distance` and the mass accumulator in the same
/// sequence as `vector::sum`.
pub fn apply_epilogue(r: &[f64], next: &mut [f64], coeffs: &StepCoeffs<'_>) -> StepOutcome {
    let c = coeffs.damping;
    let teleport = coeffs.teleport;
    let mut delta = 0.0;
    let mut mass = 0.0;
    match coeffs.sink {
        Some(mask) => {
            for ((x, &r_u), &d) in next.iter_mut().zip(r).zip(mask) {
                let v = c * *x + teleport + if d { c * r_u } else { 0.0 };
                delta += (v - r_u).abs();
                mass += v;
                *x = v;
            }
        }
        None if coeffs.spread != 0.0 => {
            let spread = coeffs.spread;
            for (x, &r_u) in next.iter_mut().zip(r) {
                let v = c * *x + teleport + spread;
                delta += (v - r_u).abs();
                mass += v;
                *x = v;
            }
        }
        None => {
            for (x, &r_u) in next.iter_mut().zip(r) {
                let v = c * *x + teleport;
                delta += (v - r_u).abs();
                mass += v;
                *x = v;
            }
        }
    }
    StepOutcome { delta, mass }
}

/// One update under a dangling strategy. `dangling_rows[u]` flags rows
/// with no out-edges in the (filtered, normalized) matrix.
///
/// Compatibility wrapper over [`apply_epilogue`]; allocates via `multiply`.
/// The hot path is [`run_into`], which reuses buffers across iterations.
pub fn step_with(
    r: &[f64],
    multiply: impl FnOnce(&[f64]) -> Vec<f64>,
    dangling_rows: &[bool],
    opts: &PageRankOptions,
) -> Vec<f64> {
    let n = r.len() as f64;
    let c = opts.damping;
    let teleport = (1.0 - c) * vector::sum(r) / n;
    let spread = match opts.dangling {
        DanglingStrategy::Redistribute => {
            let dangling_mass: f64 = r
                .iter()
                .zip(dangling_rows)
                .filter(|&(_, &d)| d)
                .map(|(&x, _)| x)
                .sum();
            c * dangling_mass / n
        }
        _ => 0.0,
    };
    let sink = matches!(opts.dangling, DanglingStrategy::Sink).then_some(dangling_rows);
    let coeffs = StepCoeffs {
        damping: c,
        teleport,
        spread,
        sink,
    };
    let mut next = multiply(r);
    apply_epilogue(r, &mut next, &coeffs);
    next
}

/// Runs kernel 3 with a buffer-writing stepper: double-buffered rank
/// vectors (one extra allocation at setup, zero O(N) allocation per
/// iteration) and the running mass carried between iterations.
///
/// The stepper receives the current ranks, the output buffer to fill, and
/// the precomputed scalar coefficients for this iteration; it returns the
/// L1 delta and the new total mass, both of which it can accumulate during
/// its single write sweep. Serial callers build one with
/// [`serial_stepper`]; the parallel backend passes a closure over
/// `spmv::step_fused`.
///
/// In debug builds each iteration asserts the carried mass agrees with a
/// fresh `vector::sum` of the current ranks within 1e-12.
pub fn run_into(
    r0: Vec<f64>,
    mut stepper: impl FnMut(&[f64], &mut [f64], &StepCoeffs<'_>) -> StepOutcome,
    dangling: &DanglingInfo,
    opts: &PageRankOptions,
) -> PageRankRun {
    assert_eq!(
        dangling.mask.len(),
        r0.len(),
        "dangling mask length mismatch"
    );
    let mut cur = r0;
    let mut buf = vec![0.0; cur.len()];
    let mut mass = vector::sum(&cur);
    let mut delta = f64::INFINITY;
    let mut done = 0;
    for i in 1..=opts.max_iterations {
        debug_assert!(
            (mass - vector::sum(&cur)).abs() <= 1e-12,
            "carried mass {mass} drifted from fresh sum {}",
            vector::sum(&cur)
        );
        let coeffs = step_coeffs(mass, &cur, dangling, opts);
        let out = stepper(&cur, &mut buf, &coeffs);
        std::mem::swap(&mut cur, &mut buf);
        mass = out.mass;
        delta = out.delta;
        done = i;
        if opts.tolerance.is_some_and(|tol| delta < tol) {
            break;
        }
    }
    PageRankRun {
        ranks: cur,
        iterations: done,
        final_delta: delta,
    }
}

/// Adapts a plain `r * A` closure into a [`run_into`] stepper: multiply,
/// copy into the iteration buffer, apply the epilogue in place. This is
/// the compatibility path for backends whose multiply allocates its own
/// output; it reproduces the historical serial results bit for bit.
pub fn serial_stepper<M>(
    mut multiply: M,
) -> impl FnMut(&[f64], &mut [f64], &StepCoeffs<'_>) -> StepOutcome
where
    M: FnMut(&[f64]) -> Vec<f64>,
{
    move |r, next, coeffs| {
        let prod = multiply(r);
        next.copy_from_slice(&prod);
        apply_epilogue(r, next, coeffs)
    }
}

/// Runs kernel 3 under full options: dangling strategy and optional
/// convergence stopping.
///
/// Compatibility wrapper: precomputes [`DanglingInfo`] from the mask and
/// drives [`run_into`] with a [`serial_stepper`].
///
/// # Panics
///
/// Panics if `dangling_rows.len() != r0.len()`.
pub fn run(
    r0: Vec<f64>,
    multiply: impl FnMut(&[f64]) -> Vec<f64>,
    dangling_rows: &[bool],
    opts: &PageRankOptions,
) -> PageRankRun {
    assert_eq!(
        dangling_rows.len(),
        r0.len(),
        "dangling mask length mismatch"
    );
    let info = DanglingInfo::from_mask(dangling_rows);
    run_into(r0, serial_stepper(multiply), &info, opts)
}

/// The L1 mass retained after a run. With no dangling rows this stays at
/// 1.0; dangling rows leak `c·(their mass)` per iteration, which the
/// benchmark tolerates (the spec explicitly omits the dangling-node
/// correction term).
pub fn rank_mass(r: &[f64]) -> f64 {
    vector::sum(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_sparse::{eigen, ops, spmv, Coo, Csr};

    fn ring(n: u64) -> Csr<f64> {
        let mut coo = Coo::<u64>::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1);
        }
        ops::normalize_rows(&coo.compress())
    }

    #[test]
    fn init_is_normalized_and_deterministic() {
        let r1 = init_ranks(100, 7);
        let r2 = init_ranks(100, 7);
        let r3 = init_ranks(100, 8);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
        assert!((vector::norm_l1(&r1) - 1.0).abs() < 1e-12);
        assert!(r1.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn mass_is_conserved_without_dangling_rows() {
        let a = ring(8);
        let r0 = init_ranks(8, 1);
        let r = pagerank(r0, |x| spmv::vxm(x, &a), 0.85, 20);
        assert!((rank_mass(&r) - 1.0).abs() < 1e-9, "mass {}", rank_mass(&r));
    }

    #[test]
    fn symmetric_ring_converges_to_uniform() {
        let a = ring(6);
        let r0 = init_ranks(6, 3);
        let r = pagerank(r0, |x| spmv::vxm(x, &a), 0.85, 200);
        for &x in &r {
            assert!((x - 1.0 / 6.0).abs() < 1e-9, "rank {x} not uniform");
        }
    }

    #[test]
    fn matches_eigenvector_of_pagerank_matrix() {
        // The paper's validation: after enough iterations, r equals the
        // dominant eigenvector of c·Aᵀ + (1−c)/N·𝟙 (L1-normalized).
        let mut coo = Coo::<u64>::new(5, 5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0), (0, 3)] {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        let at = a.transpose();
        let r = pagerank(init_ranks(5, 2), |x| spmv::vxm(x, &a), 0.85, 300);
        let mut r_norm = r.clone();
        vector::normalize_l1(&mut r_norm);
        let eig = eigen::pagerank_eigenvector(&at, 0.85, 5000, 1e-14);
        assert!(eig.converged);
        assert!(
            vector::l1_distance(&r_norm, &eig.vector) < 1e-10,
            "iterated {r_norm:?} vs eigenvector {:?}",
            eig.vector
        );
    }

    #[test]
    fn dangling_rows_leak_mass() {
        // Single edge 0→1, vertex 1 dangles: mass decays.
        let mut coo = Coo::<u64>::new(2, 2);
        coo.push(0, 1, 1);
        let a = ops::normalize_rows(&coo.compress());
        let r = pagerank(init_ranks(2, 1), |x| spmv::vxm(x, &a), 0.85, 20);
        assert!(rank_mass(&r) < 1.0);
        assert!(rank_mass(&r) > 0.0);
    }

    #[test]
    fn damping_zero_limit_is_uniform_teleport() {
        // c → 0 gives r = sum(r)/N everywhere after one step.
        let a = ring(4);
        let r0 = vec![0.4, 0.3, 0.2, 0.1];
        let r = step(&r0, |x| spmv::vxm(x, &a), 1e-12);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn redistribute_conserves_mass_with_dangling_rows() {
        // 0→1, vertex 1 dangles.
        let mut coo = Coo::<u64>::new(2, 2);
        coo.push(0, 1, 1);
        let a = ops::normalize_rows(&coo.compress());
        let dangling = [false, true];
        let opts = PageRankOptions {
            dangling: DanglingStrategy::Redistribute,
            ..Default::default()
        };
        let out = run(init_ranks(2, 1), |x| spmv::vxm(x, &a), &dangling, &opts);
        assert_eq!(out.iterations, 20);
        assert!(
            (rank_mass(&out.ranks) - 1.0).abs() < 1e-12,
            "strongly preferential PageRank conserves mass: {}",
            rank_mass(&out.ranks)
        );
    }

    #[test]
    fn sink_strategy_conserves_mass_and_favors_sinks() {
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(0, 1, 1);
        coo.push(0, 2, 1);
        coo.push(1, 2, 1); // vertex 2 is a sink
        let a = ops::normalize_rows(&coo.compress());
        let dangling = [false, false, true];
        let opts = PageRankOptions {
            dangling: DanglingStrategy::Sink,
            max_iterations: 100,
            ..Default::default()
        };
        let out = run(init_ranks(3, 1), |x| spmv::vxm(x, &a), &dangling, &opts);
        assert!((rank_mass(&out.ranks) - 1.0).abs() < 1e-12);
        assert!(
            out.ranks[2] > out.ranks[0] && out.ranks[2] > out.ranks[1],
            "the sink should accumulate the most mass: {:?}",
            out.ranks
        );
    }

    #[test]
    fn sink_equals_diagonal_repair_in_the_matrix() {
        // Adding self-loops in the matrix (the §V kernel-2 repair) and the
        // Sink strategy at iteration time are the same Markov chain.
        let mut coo = Coo::<u64>::new(4, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            coo.push(u, v, 1);
        }
        let counts = coo.compress();
        let plain = ops::normalize_rows(&counts);
        let dangling = ops::empty_rows(&plain);
        let repaired = ops::normalize_rows(&ops::add_diagonal_where(
            &counts,
            |i| dangling[i as usize],
            1,
        ));
        let opts_sink = PageRankOptions {
            dangling: DanglingStrategy::Sink,
            max_iterations: 30,
            ..Default::default()
        };
        let opts_omit = PageRankOptions {
            max_iterations: 30,
            ..Default::default()
        };
        let a = run(
            init_ranks(4, 2),
            |x| spmv::vxm(x, &plain),
            &dangling,
            &opts_sink,
        );
        let b = run(
            init_ranks(4, 2),
            |x| spmv::vxm(x, &repaired),
            &[false; 4],
            &opts_omit,
        );
        for i in 0..4 {
            assert!(
                (a.ranks[i] - b.ranks[i]).abs() < 1e-12,
                "sink vs repaired diverge at {i}: {} vs {}",
                a.ranks[i],
                b.ranks[i]
            );
        }
    }

    #[test]
    fn omit_strategy_via_run_matches_plain_pagerank() {
        let a = ring(6);
        let opts = PageRankOptions::default();
        let via_run = run(init_ranks(6, 9), |x| spmv::vxm(x, &a), &[false; 6], &opts);
        let plain = pagerank(init_ranks(6, 9), |x| spmv::vxm(x, &a), 0.85, 20);
        assert_eq!(via_run.ranks, plain);
        assert_eq!(via_run.iterations, 20);
    }

    #[test]
    fn convergence_mode_stops_early() {
        let a = ring(8);
        let opts = PageRankOptions {
            max_iterations: 10_000,
            tolerance: Some(1e-12),
            ..Default::default()
        };
        let out = run(init_ranks(8, 3), |x| spmv::vxm(x, &a), &[false; 8], &opts);
        assert!(out.iterations < 10_000, "never converged");
        assert!(out.final_delta < 1e-12);
        // Converged to uniform on the symmetric ring.
        for &x in &out.ranks {
            assert!((x - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_strategy_names_roundtrip() {
        for s in [
            DanglingStrategy::Omit,
            DanglingStrategy::Redistribute,
            DanglingStrategy::Sink,
        ] {
            assert_eq!(DanglingStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(DanglingStrategy::parse("vanish"), None);
    }

    #[test]
    fn dangling_info_matches_masked_scan() {
        let mask = [true, false, false, true, true];
        let info = DanglingInfo::from_mask(&mask);
        assert_eq!(info.indices(), &[0, 3, 4]);
        assert_eq!(info.count(), 3);
        assert_eq!(info.mask(), &mask);
        let r = [0.1, 0.2, 0.3, 0.25, 0.15];
        let scan: f64 = r
            .iter()
            .zip(&mask)
            .filter(|&(_, &d)| d)
            .map(|(&x, _)| x)
            .sum();
        assert_eq!(info.mass(&r).to_bits(), scan.to_bits());
    }

    #[test]
    fn run_into_ping_pongs_the_setup_buffers() {
        // Zero-allocation evidence: after an even number of iterations the
        // result occupies the exact heap buffer `r0` arrived in — the loop
        // only ever swaps the two setup buffers, never reallocates.
        let a = ring(16);
        let r0 = init_ranks(16, 5);
        let p0 = r0.as_ptr();
        let dangling = DanglingInfo::from_mask(&[false; 16]);
        let opts = PageRankOptions::default(); // 20 iterations, even
        let out = run_into(
            r0,
            |r, next, coeffs| {
                spmv::vxm_into(r, &a, next);
                apply_epilogue(r, next, coeffs)
            },
            &dangling,
            &opts,
        );
        assert_eq!(out.iterations, 20);
        assert_eq!(out.ranks.as_ptr(), p0, "rank buffer was reallocated");
    }

    #[test]
    fn run_is_bit_identical_to_the_legacy_step_loop() {
        // The compatibility wrapper must reproduce the historical
        // iteration exactly: fresh-sum teleport, masked dangling scan,
        // post-hoc l1_distance.
        let mut coo = Coo::<u64>::new(6, 6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 0), (0, 4)] {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        let dangling = ops::empty_rows(&a);
        for strategy in [
            DanglingStrategy::Omit,
            DanglingStrategy::Redistribute,
            DanglingStrategy::Sink,
        ] {
            let opts = PageRankOptions {
                dangling: strategy,
                ..Default::default()
            };
            let via_run = run(init_ranks(6, 4), |x| spmv::vxm(x, &a), &dangling, &opts);
            let mut r = init_ranks(6, 4);
            let mut delta = f64::INFINITY;
            for _ in 0..opts.max_iterations {
                let next = step_with(&r, |x| spmv::vxm(x, &a), &dangling, &opts);
                delta = vector::l1_distance(&next, &r);
                r = next;
            }
            assert_eq!(via_run.ranks, r, "{strategy:?} ranks diverged");
            assert_eq!(
                via_run.final_delta.to_bits(),
                delta.to_bits(),
                "{strategy:?} delta diverged"
            );
        }
    }

    #[test]
    fn fused_stepper_matches_serial_stepper_within_tolerance() {
        // The parallel backend's fused path against the serial compat path
        // on a graph with dangling rows, all three strategies.
        let mut coo = Coo::<u64>::new(8, 8);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (0, 5)] {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        let at = a.transpose();
        let mask = ops::empty_rows(&a);
        let info = DanglingInfo::from_mask(&mask);
        let boundaries = spmv::balanced_boundaries(at.row_ptr(), 3);
        for strategy in [
            DanglingStrategy::Omit,
            DanglingStrategy::Redistribute,
            DanglingStrategy::Sink,
        ] {
            let opts = PageRankOptions {
                dangling: strategy,
                ..Default::default()
            };
            let serial = run(init_ranks(8, 6), |x| spmv::vxm(x, &a), &mask, &opts);
            let fused = run_into(
                init_ranks(8, 6),
                |r, next, coeffs| spmv::step_fused(r, &at.view(), next, coeffs, &boundaries),
                &info,
                &opts,
            );
            let dist = vector::l1_distance(&serial.ranks, &fused.ranks);
            assert!(dist < 1e-12, "{strategy:?} fused L1 gap {dist}");
        }
    }

    #[test]
    fn step_is_linear_in_r() {
        let a = ring(5);
        let r: Vec<f64> = vec![0.1, 0.3, 0.2, 0.25, 0.15];
        let doubled: Vec<f64> = r.iter().map(|x| x * 2.0).collect();
        let s1 = step(&r, |x| spmv::vxm(x, &a), 0.85);
        let s2 = step(&doubled, |x| spmv::vxm(x, &a), 0.85);
        for i in 0..5 {
            assert!((s2[i] - 2.0 * s1[i]).abs() < 1e-12);
        }
    }
}
