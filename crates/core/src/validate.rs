//! Correctness validation — the paper's §V "what outputs should be recorded
//! to validate correctness?" question, answered.
//!
//! Two levels:
//!
//! * **Invariants** (cheap, always on by default): kernel 1 preserved the
//!   edge multiset; kernel 2's matrix mass equals M; ranks are non-negative
//!   with plausible L1 mass.
//! * **Eigenvector** (the paper's check): the normalized rank vector must
//!   match the dominant eigenvector of `c·Aᵀ + (1−c)/N·𝟙`, computed by
//!   matrix-free power iteration. The 20-iteration benchmark vector is an
//!   *approximation* of that eigenvector, so the comparison uses a
//!   tolerance derived from the damping factor (`c^20 ≈ 0.04` bounds the
//!   remaining error for a well-behaved chain).

use ppbench_io::checksum::EdgeDigest;
use ppbench_sparse::{eigen, vector, Csr};

use crate::kernel2::FilterStats;

/// One named validation check.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What was checked.
    pub name: &'static str,
    /// Whether it held.
    pub passed: bool,
    /// Human-readable detail (measured values).
    pub detail: String,
}

/// The collected validation outcome of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// All executed checks.
    pub checks: Vec<Check>,
    /// L1 distance between the normalized rank vector and the reference
    /// eigenvector, when the eigenvector check ran.
    pub eigen_residual: Option<f64>,
}

impl ValidationReport {
    /// True if every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    fn push(&mut self, name: &'static str, passed: bool, detail: String) {
        self.checks.push(Check {
            name,
            passed,
            detail,
        });
    }

    /// One-line summary.
    pub fn summary_line(&self) -> String {
        let failed: Vec<&str> = self
            .checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| c.name)
            .collect();
        if failed.is_empty() {
            format!(
                "{} checks passed{}",
                self.checks.len(),
                self.eigen_residual
                    .map(|r| format!(" (eigen residual {r:.2e})"))
                    .unwrap_or_default()
            )
        } else {
            format!("FAILED: {}", failed.join(", "))
        }
    }

    /// Full multi-line report.
    pub fn detail(&self) -> String {
        self.checks
            .iter()
            .map(|c| {
                format!(
                    "[{}] {}: {}",
                    if c.passed { "ok" } else { "FAIL" },
                    c.name,
                    c.detail
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Checks the cross-kernel invariants.
///
/// Any argument may be `None` when that kernel did not run; only the checks
/// whose inputs are present execute.
pub fn check_invariants(
    expected_edges: u64,
    n: u64,
    k0_digest: Option<&EdgeDigest>,
    k1_digest: Option<&EdgeDigest>,
    k2_stats: Option<&FilterStats>,
    ranks: Option<&[f64]>,
) -> ValidationReport {
    let mut report = ValidationReport::default();

    if let Some(d0) = k0_digest {
        report.push(
            "k0-edge-count",
            d0.count == expected_edges,
            format!("wrote {} of {} expected edges", d0.count, expected_edges),
        );
    }
    if let (Some(d0), Some(d1)) = (k0_digest, k1_digest) {
        report.push(
            "k1-multiset-preserved",
            d0.same_multiset(d1),
            "sort must permute, not alter, the edge multiset".into(),
        );
    }
    if let Some(stats) = k2_stats {
        report.push(
            "k2-mass-equals-m",
            stats.total_edge_count == expected_edges,
            format!(
                "sum(A(:)) = {} vs M = {}",
                stats.total_edge_count, expected_edges
            ),
        );
        report.push(
            "k2-nnz-at-most-m",
            stats.nnz_before as u64 <= expected_edges,
            format!("nnz(A) = {} vs M = {}", stats.nnz_before, expected_edges),
        );
    }
    if let Some(r) = ranks {
        report.push(
            "k3-rank-length",
            r.len() as u64 == n,
            format!("len {} vs N {}", r.len(), n),
        );
        report.push(
            "k3-ranks-nonnegative",
            r.iter().all(|&x| x >= 0.0 && x.is_finite()),
            "ranks must be finite and non-negative".into(),
        );
        let mass = vector::sum(r);
        report.push(
            "k3-mass-bounded",
            mass > 0.0 && mass <= 1.0 + 1e-9,
            format!("L1 mass {mass:.6} (leaks below 1.0 with dangling rows)"),
        );
    }
    report
}

/// Sanity checks on an analytics-workload output (the non-PageRank
/// kernel-3 slot): the output vector must have one entry per vertex (one
/// total for triangle counting) and the headline statistic must be
/// consistent with it.
pub fn check_workload_output(
    workload: &str,
    n: u64,
    values: &[u64],
    stat: u64,
    stat_name: &str,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let expected_len = if workload == "tc" { 1 } else { n };
    report.push(
        "workload-output-length",
        values.len() as u64 == expected_len,
        format!(
            "{workload} produced {} values, expected {expected_len}",
            values.len()
        ),
    );
    let stat_ok = match stat_name {
        // A traversal reaches at least its source and at most every vertex;
        // components number between 1 and N.
        "reached" | "components" => stat >= 1 && stat <= n,
        // The count workloads report their own value back.
        "triangles" => values.first().copied() == Some(stat),
        _ => false,
    };
    report.push(
        "workload-stat-consistent",
        stat_ok,
        format!("{workload}: {stat} {stat_name} over {n} vertices"),
    );
    report
}

/// Structural checks on the kernel-2 output matrix: every row must be
/// stochastic (sums to 1) or empty, entries must lie in (0, 1], and the
/// stored structure must satisfy the CSR invariants.
pub fn check_matrix(a: &Csr<f64>) -> ValidationReport {
    let mut report = ValidationReport::default();
    report.push(
        "k2-csr-invariants",
        a.check_invariants().is_ok(),
        a.check_invariants()
            .err()
            .unwrap_or_else(|| "structure valid".into()),
    );
    let mut worst: f64 = 0.0;
    let mut rows_ok = true;
    for (r, &s) in ppbench_sparse::ops::row_sums(a).iter().enumerate() {
        if a.row_nnz(r as u64) > 0 {
            worst = worst.max((s - 1.0).abs());
            if (s - 1.0).abs() > 1e-9 {
                rows_ok = false;
            }
        }
    }
    report.push(
        "k2-rows-stochastic",
        rows_ok,
        format!("worst |row sum - 1| = {worst:.3e}"),
    );
    let entries_ok = a.values().iter().all(|&v| v > 0.0 && v <= 1.0);
    report.push(
        "k2-entries-in-unit-interval",
        entries_ok,
        "normalized entries must lie in (0, 1]".into(),
    );
    report
}

/// The paper's eigenvector check: compares normalized `ranks` against the
/// dominant eigenvector of `c·Aᵀ + (1−c)/N·𝟙` (computed matrix-free).
///
/// `a` is the row-normalized kernel-2 matrix. Returns the report with
/// `eigen_residual` set.
pub fn check_eigenvector(
    a: &Csr<f64>,
    ranks: &[f64],
    damping: f64,
    iterations: u32,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let at = a.transpose();
    let eig = eigen::pagerank_eigenvector(&at, damping, 10_000, 1e-13);
    let mut r = ranks.to_vec();
    vector::normalize_l1(&mut r);
    let residual = vector::l1_distance(&r, &eig.vector);
    // After `iterations` power steps the iterate is within O(c^iterations)
    // of the fixed point (times a modest constant for the starting error).
    let tol = 4.0 * damping.powi(iterations as i32) + 1e-9;
    report.push(
        "k3-eigenvector-agreement",
        eig.converged && residual <= tol,
        format!(
            "L1 residual {residual:.3e} (tolerance {tol:.3e}, reference converged: {})",
            eig.converged
        ),
    );
    report.eigen_residual = Some(residual);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernel2, kernel3};
    use ppbench_io::Edge;
    use ppbench_sparse::{ops, spmv, Coo};

    #[test]
    fn invariants_pass_on_consistent_run() {
        let edges: Vec<Edge> = (0..50).map(|i| Edge::new(i % 7, (i * 3) % 7)).collect();
        let d0 = EdgeDigest::of_edges(&edges);
        let mut sorted = edges.clone();
        sorted.sort();
        let d1 = EdgeDigest::of_edges(&sorted);
        let stats = FilterStats {
            total_edge_count: 50,
            nnz_before: 30,
            max_in_degree: 9,
            supernode_columns: 1,
            leaf_columns: 0,
            nnz_after: 20,
            dangling_rows: 1,
            diagonal_repairs: 0,
        };
        let ranks = vec![0.1; 7];
        let report = check_invariants(50, 7, Some(&d0), Some(&d1), Some(&stats), Some(&ranks));
        assert!(report.passed(), "{}", report.detail());
        assert_eq!(report.checks.len(), 7);
    }

    #[test]
    fn tampered_sort_detected() {
        let edges: Vec<Edge> = (0..10).map(|i| Edge::new(i, i + 1)).collect();
        let d0 = EdgeDigest::of_edges(&edges);
        let mut tampered = edges.clone();
        tampered[3] = Edge::new(99, 99);
        let d1 = EdgeDigest::of_edges(&tampered);
        let report = check_invariants(10, 16, Some(&d0), Some(&d1), None, None);
        assert!(!report.passed());
        assert!(report.summary_line().contains("k1-multiset-preserved"));
    }

    #[test]
    fn bad_mass_detected() {
        let ranks = vec![0.9, 0.9]; // mass 1.8 > 1
        let report = check_invariants(0, 2, None, None, None, Some(&ranks));
        assert!(!report.passed());
        let nan_ranks = vec![f64::NAN, 0.0];
        let report = check_invariants(0, 2, None, None, None, Some(&nan_ranks));
        assert!(!report.passed());
    }

    #[test]
    fn eigenvector_check_accepts_real_pagerank() {
        let mut coo = Coo::<u64>::new(6, 6);
        for (u, v) in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (0, 3),
            (2, 5),
        ] {
            coo.push(u, v, 1);
        }
        let (a, _) = kernel2::filter_matrix(&coo.compress(), true);
        let ranks = kernel3::pagerank(kernel3::init_ranks(6, 1), |x| spmv::vxm(x, &a), 0.85, 20);
        let report = check_eigenvector(&a, &ranks, 0.85, 20);
        assert!(report.passed(), "{}", report.detail());
        assert!(report.eigen_residual.unwrap() < 0.2);
    }

    #[test]
    fn eigenvector_check_rejects_garbage_ranks() {
        let mut coo = Coo::<u64>::new(6, 6);
        for (u, v) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (0, 4),
            (4, 0),
        ] {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        // A wildly wrong "rank" vector concentrated on one vertex.
        let mut garbage = vec![0.0; 6];
        garbage[3] = 1.0;
        let report = check_eigenvector(&a, &garbage, 0.85, 20);
        assert!(!report.passed(), "{}", report.detail());
    }

    #[test]
    fn workload_output_checks_catch_inconsistencies() {
        let good = check_workload_output("bfs", 4, &[0, 1, 1, u64::MAX], 3, "reached");
        assert!(good.passed(), "{}", good.detail());
        let short = check_workload_output("bfs", 4, &[0, 1], 2, "reached");
        assert!(!short.passed());
        let zero = check_workload_output("cc", 4, &[0, 0, 0, 0], 0, "components");
        assert!(!zero.passed(), "zero components is impossible");
        let tc_ok = check_workload_output("tc", 4, &[7], 7, "triangles");
        assert!(tc_ok.passed(), "{}", tc_ok.detail());
        let tc_bad = check_workload_output("tc", 4, &[7], 8, "triangles");
        assert!(!tc_bad.passed());
        let unknown = check_workload_output("bfs", 4, &[0, 1, 1, 2], 3, "mystery");
        assert!(!unknown.passed());
    }

    #[test]
    fn partial_inputs_run_partial_checks() {
        let report = check_invariants(10, 4, None, None, None, None);
        assert!(report.checks.is_empty());
        assert!(report.passed(), "vacuously true");
    }
}
