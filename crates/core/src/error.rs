//! Error type for pipeline runs.

use std::fmt;

/// Result alias for pipeline operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by pipeline kernels and validation.
#[derive(Debug)]
pub enum Error {
    /// Storage-layer failure (file I/O, parse, manifest).
    Storage(ppbench_io::Error),
    /// Dataframe-layer failure (only the dataframe backend produces these).
    Frame(ppbench_frame::FrameError),
    /// A kernel's input did not satisfy its contract (e.g. kernel 2 fed
    /// unsorted files).
    Contract(String),
    /// Validation detected an incorrect result.
    Validation(String),
    /// Invalid configuration.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Frame(e) => write!(f, "dataframe error: {e}"),
            Error::Contract(m) => write!(f, "kernel contract violated: {m}"),
            Error::Validation(m) => write!(f, "validation failed: {m}"),
            Error::Config(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            Error::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppbench_io::Error> for Error {
    fn from(e: ppbench_io::Error) -> Self {
        Error::Storage(e)
    }
}

impl From<ppbench_frame::FrameError> for Error {
    fn from(e: ppbench_frame::FrameError) -> Self {
        Error::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed() {
        assert!(Error::Contract("x".into()).to_string().contains("contract"));
        assert!(Error::Validation("x".into())
            .to_string()
            .contains("validation"));
        assert!(Error::Config("x".into())
            .to_string()
            .contains("configuration"));
    }

    #[test]
    fn from_io_error() {
        let e: Error = ppbench_io::Error::InvalidConfig("y".into()).into();
        assert!(matches!(e, Error::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
