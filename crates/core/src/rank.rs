//! Rank-order comparison utilities.
//!
//! The benchmark's *numbers* are validated by digests and the eigenvector
//! check; what a downstream user of PageRank actually consumes is the
//! *ordering* of vertices. These helpers quantify ordering agreement —
//! used by the validation tests to show that all backends (and the
//! distributed runner) produce not just close values but the same ranking,
//! and available to applications comparing ranking variants (e.g. the
//! dangling strategies).

/// Returns vertex ids ordered by descending rank value, ties broken by
/// ascending vertex id (deterministic).
pub fn ordering(ranks: &[f64]) -> Vec<u64> {
    let mut idx: Vec<u64> = (0..ranks.len() as u64).collect();
    idx.sort_by(|&a, &b| {
        ranks[b as usize]
            .total_cmp(&ranks[a as usize])
            .then(a.cmp(&b))
    });
    idx
}

/// Kendall rank correlation τ between two rank vectors of equal length,
/// computed in O(n log n) by merge-sort inversion counting.
///
/// Returns a value in `[-1, 1]`: 1 for identical orderings, −1 for exactly
/// reversed ones. Ties in rank values are broken by vertex id before
/// comparison (consistent with [`ordering`]).
///
/// # Panics
///
/// Panics if the lengths differ or `n < 2`.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank vectors must have equal length");
    let n = a.len();
    assert!(n >= 2, "need at least two items to correlate");
    // Position of each vertex in b's ordering.
    let order_b = ordering(b);
    let mut pos_b = vec![0u64; n];
    for (p, &v) in order_b.iter().enumerate() {
        pos_b[v as usize] = p as u64;
    }
    // Walk a's ordering and count inversions of the induced b-positions.
    let seq: Vec<u64> = ordering(a).iter().map(|&v| pos_b[v as usize]).collect();
    let inversions = count_inversions(seq);
    let pairs = (n as u64 * (n as u64 - 1) / 2) as f64;
    1.0 - 2.0 * inversions as f64 / pairs
}

/// Counts inversions with an iterative bottom-up merge sort.
fn count_inversions(mut seq: Vec<u64>) -> u64 {
    let n = seq.len();
    let mut buf = vec![0u64; n];
    let mut inversions = 0u64;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo + width < n {
            let mid = lo + width;
            let hi = (mid + width).min(n);
            // Merge seq[lo..mid] and seq[mid..hi] counting cross pairs.
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                if seq[i] <= seq[j] {
                    buf[k] = seq[i];
                    i += 1;
                } else {
                    buf[k] = seq[j];
                    j += 1;
                    inversions += (mid - i) as u64;
                }
                k += 1;
            }
            buf[k..k + (mid - i)].copy_from_slice(&seq[i..mid]);
            let k = k + (mid - i);
            buf[k..k + (hi - j)].copy_from_slice(&seq[j..hi]);
            seq[lo..hi].copy_from_slice(&buf[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

/// Ids of the `k` highest-ranked vertices under the same comparator as
/// [`ordering`] (descending rank, ties by ascending id), returned in
/// ascending id order (set semantics).
///
/// Selected in O(n) expected time with `select_nth_unstable_by` rather
/// than a full sort — at benchmark scales the caller wants the top handful
/// out of millions of vertices, so sorting everything to keep five entries
/// is almost all wasted work.
pub fn top_k_ids(ranks: &[f64], k: usize) -> Vec<u64> {
    let k = k.min(ranks.len());
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u64> = (0..ranks.len() as u64).collect();
    if k < idx.len() {
        // After this call positions 0..k hold the k least elements under
        // the comparator — which orders by descending rank — i.e. the top
        // k vertices, in arbitrary internal order.
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            ranks[b as usize]
                .total_cmp(&ranks[a as usize])
                .then(a.cmp(&b))
        });
        idx.truncate(k);
    }
    idx.sort_unstable();
    idx
}

/// Jaccard overlap of the top-`k` sets of two rank vectors: 1.0 when both
/// agree on which vertices matter most, regardless of their order within
/// the top `k`.
///
/// # Panics
///
/// Panics if the lengths differ or `k == 0`.
pub fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "rank vectors must have equal length");
    assert!(k > 0, "k must be positive");
    let sa = top_k_ids(a, k);
    let sb = top_k_ids(b, k);
    // Both sides are ascending, so the intersection is a two-pointer merge.
    let (mut i, mut j, mut inter) = (0, 0, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_descends_with_stable_ties() {
        assert_eq!(ordering(&[0.1, 0.5, 0.5, 0.2]), vec![1, 2, 3, 0]);
    }

    #[test]
    fn tau_extremes() {
        let a = [4.0, 3.0, 2.0, 1.0];
        let reversed = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &reversed), -1.0);
    }

    #[test]
    fn tau_single_swap() {
        // Orderings [0,1,2,3] vs [1,0,2,3]: one discordant pair of six.
        let a = [4.0, 3.0, 2.0, 1.0];
        let b = [3.0, 4.0, 2.0, 1.0];
        let tau = kendall_tau(&a, &b);
        assert!((tau - (1.0 - 2.0 / 6.0)).abs() < 1e-12, "tau {tau}");
    }

    #[test]
    fn tau_matches_naive_on_random_input() {
        // Pseudo-random vectors, O(n²) reference.
        let mut state = 123u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let a: Vec<f64> = (0..200).map(|_| next()).collect();
        let b: Vec<f64> = (0..200).map(|_| next()).collect();
        let fast = kendall_tau(&a, &b);
        // Naive pair count.
        let n = a.len();
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..n {
            for j in i + 1..n {
                let da = a[i].partial_cmp(&a[j]).unwrap();
                let db = b[i].partial_cmp(&b[j]).unwrap();
                if da == db {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
        let naive = (concordant - discordant) as f64 / (concordant + discordant) as f64;
        assert!((fast - naive).abs() < 1e-12, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn inversion_counter_basics() {
        assert_eq!(count_inversions(vec![]), 0);
        assert_eq!(count_inversions(vec![1]), 0);
        assert_eq!(count_inversions(vec![1, 2, 3]), 0);
        assert_eq!(count_inversions(vec![3, 2, 1]), 3);
        assert_eq!(count_inversions(vec![2, 1, 3, 5, 4]), 2);
    }

    #[test]
    fn top_k_overlap_behaviour() {
        let a = [0.9, 0.8, 0.1, 0.05];
        let b = [0.8, 0.9, 0.07, 0.2];
        // Top-2 sets identical.
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0);
        // Top-3: {0,1,2} vs {0,1,3} → 2/4.
        assert_eq!(top_k_overlap(&a, &b, 3), 0.5);
        // k past the length clamps.
        assert_eq!(top_k_overlap(&a, &b, 100), 1.0);
    }

    #[test]
    fn top_k_ids_agree_with_full_ordering() {
        // Quantized pseudo-random ranks: plenty of exact ties, so the
        // selection's tie-break has to match the full sort's exactly.
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) % 16) as f64 / 16.0
        };
        let ranks: Vec<f64> = (0..257).map(|_| next()).collect();
        for k in [1, 2, 7, 64, 256, 257, 500] {
            let mut expect: Vec<u64> = ordering(&ranks).into_iter().take(k).collect();
            expect.sort_unstable();
            assert_eq!(top_k_ids(&ranks, k), expect, "k = {k}");
        }
        assert!(top_k_ids(&ranks, 0).is_empty());
        assert!(top_k_ids(&[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn tau_length_checked() {
        let _ = kendall_tau(&[1.0], &[1.0, 2.0]);
    }
}
