//! Machine-readable run records.
//!
//! A benchmark is only useful if its numbers outlive the process. This
//! module persists a [`crate::PipelineResult`] as a self-describing
//! tab-separated record (same zero-dependency philosophy as the edge-file
//! manifests) and loads it back for longitudinal comparison — e.g. a CI
//! job diffing tonight's rates against last week's.

use std::path::Path;

use crate::results::PipelineResult;
use crate::{Error, Result};

/// A persisted (or reloaded) run record: the subset of a
/// [`PipelineResult`] that is meaningful across processes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Backend name.
    pub variant: String,
    /// Kernel-3-slot workload name (`"pagerank"`, `"bfs"`, …). Legacy
    /// records predate the field and parse as `"pagerank"`.
    pub workload: String,
    /// Scale factor.
    pub scale: u32,
    /// Edge count M.
    pub edges: u64,
    /// Per-kernel `(seconds, edges_per_second)`, index 0–3; `None` for
    /// kernels that did not run.
    pub kernels: [Option<(f64, f64)>; 4],
    /// Whether validation passed (`None` if validation did not run).
    pub validation_passed: Option<bool>,
    /// Worker-thread count the run was attributed to (`None` when the
    /// caller did not pin one — e.g. legacy records, or runs that never
    /// set `pprank --threads`).
    pub threads: Option<u64>,
    /// Output fingerprint of an analytics workload (`None` for PageRank
    /// runs and legacy records) — lets two archived runs be compared for
    /// bit-identical outputs, not just rates.
    pub checksum: Option<u64>,
}

impl RunRecord {
    /// Extracts the record from a completed result.
    pub fn from_result(result: &PipelineResult) -> Self {
        let timing = |t: Option<&crate::KernelTiming>| t.map(|t| (t.seconds, t.rate()));
        // The kernel-3 slot is PageRank or the analytics workload,
        // whichever ran; both report through kernels[3].
        let k3_slot = result
            .kernel3
            .as_ref()
            .map(|k| &k.timing)
            .or_else(|| result.algo.as_ref().map(|a| &a.timing));
        Self {
            variant: result.variant.to_string(),
            workload: result.workload.to_string(),
            scale: result.scale,
            edges: result.edges,
            kernels: [
                timing(result.kernel0.as_ref().map(|k| &k.timing)),
                timing(result.kernel1.as_ref().map(|k| &k.timing)),
                timing(result.kernel2.as_ref().map(|k| &k.timing)),
                timing(k3_slot),
            ],
            validation_passed: result.validation.as_ref().map(|v| v.passed()),
            threads: None,
            checksum: result.algo.as_ref().map(|a| a.checksum),
        }
    }

    /// Serializes the record as tab-separated `key value` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::from("record\tppbench-run-v1\n");
        out.push_str(&format!("variant\t{}\n", self.variant));
        out.push_str(&format!("workload\t{}\n", self.workload));
        out.push_str(&format!("scale\t{}\n", self.scale));
        out.push_str(&format!("edges\t{}\n", self.edges));
        for (k, slot) in self.kernels.iter().enumerate() {
            if let Some((secs, rate)) = slot {
                out.push_str(&format!("kernel\t{k}\t{secs:.9}\t{rate:.3}\n"));
            }
        }
        if let Some(passed) = self.validation_passed {
            out.push_str(&format!("validation\t{passed}\n"));
        }
        if let Some(threads) = self.threads {
            out.push_str(&format!("threads\t{threads}\n"));
        }
        if let Some(checksum) = self.checksum {
            out.push_str(&format!("checksum\t{checksum:016x}\n"));
        }
        out
    }

    /// Serializes the record as a canonical JSON object.
    ///
    /// The shape mirrors [`RunRecord::to_text`] field for field and is the
    /// wire format shared by `pprank --json` and the `ppbench-serve` HTTP
    /// API: a `record` version tag, the run identity, one entry per kernel
    /// that ran (with `seconds` and `edges_per_second`), and the validation
    /// outcome (`null` when validation did not run). Rendering goes
    /// through [`crate::json`], so keys are sorted and the same record is
    /// always the same byte string — records are diffed and content-hashed,
    /// and the report surface holds to the same determinism bar as the
    /// kernels.
    pub fn to_json(&self) -> String {
        let mut kernels = crate::json::JsonArray::new();
        for (k, slot) in self.kernels.iter().enumerate() {
            if let Some((secs, rate)) = slot {
                let mut entry = crate::json::JsonObject::new();
                entry
                    .set_u64("kernel", k as u64)
                    .set_f64("seconds", *secs)
                    .set_f64("edges_per_second", *rate);
                kernels.push_obj(&entry);
            }
        }
        let mut obj = crate::json::JsonObject::new();
        obj.set_str("record", "ppbench-run-v1")
            .set_str("variant", &self.variant)
            .set_str("workload", &self.workload)
            .set_u64("scale", u64::from(self.scale))
            .set_u64("edges", self.edges)
            .set_raw("kernels", kernels.render());
        match self.validation_passed {
            Some(passed) => obj.set_bool("validation_passed", passed),
            None => obj.set_null("validation_passed"),
        };
        match self.threads {
            Some(threads) => obj.set_u64("threads", threads),
            None => obj.set_null("threads"),
        };
        match self.checksum {
            Some(checksum) => obj.set_str("checksum", &format!("{checksum:016x}")),
            None => obj.set_null("checksum"),
        };
        obj.render()
    }

    /// Parses a record produced by [`RunRecord::to_text`].
    pub fn from_text(text: &str) -> Result<Self> {
        let mut record = RunRecord {
            variant: String::new(),
            // Records written before the workload axis existed are all
            // PageRank runs.
            workload: "pagerank".to_string(),
            scale: 0,
            edges: 0,
            kernels: [None; 4],
            validation_passed: None,
            threads: None,
            checksum: None,
        };
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let bad = |msg: &str| Error::Contract(format!("run record line {}: {msg}", lineno + 1));
            match fields[0] {
                "record" => {
                    if fields.get(1) != Some(&"ppbench-run-v1") {
                        return Err(bad("unknown record version"));
                    }
                    saw_header = true;
                }
                "variant" => {
                    record.variant = fields
                        .get(1)
                        .ok_or_else(|| bad("missing variant"))?
                        .to_string();
                }
                "workload" => {
                    record.workload = fields
                        .get(1)
                        .ok_or_else(|| bad("missing workload"))?
                        .to_string();
                }
                "scale" => {
                    record.scale = fields
                        .get(1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad scale"))?;
                }
                "edges" => {
                    record.edges = fields
                        .get(1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad edge count"))?;
                }
                "kernel" => {
                    let k: usize = fields
                        .get(1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&k| k < 4)
                        .ok_or_else(|| bad("bad kernel index"))?;
                    let secs: f64 = fields
                        .get(2)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad seconds"))?;
                    let rate: f64 = fields
                        .get(3)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad rate"))?;
                    record.kernels[k] = Some((secs, rate));
                }
                "validation" => {
                    record.validation_passed = Some(
                        fields
                            .get(1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad("bad validation flag"))?,
                    );
                }
                "threads" => {
                    record.threads = Some(
                        fields
                            .get(1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad("bad thread count"))?,
                    );
                }
                "checksum" => {
                    record.checksum = Some(
                        fields
                            .get(1)
                            .and_then(|v| u64::from_str_radix(v, 16).ok())
                            .ok_or_else(|| bad("bad checksum"))?,
                    );
                }
                other => return Err(bad(&format!("unknown key {other:?}"))),
            }
        }
        if !saw_header {
            return Err(Error::Contract("run record missing header line".into()));
        }
        Ok(record)
    }

    /// Writes the record to a file.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_text())
            .map_err(|e| Error::Storage(ppbench_io::Error::io(path, e)))
    }

    /// Loads a record from a file.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Storage(ppbench_io::Error::io(path, e)))?;
        Self::from_text(&text)
    }

    /// Rate ratio (`self / baseline`) per kernel — > 1 means this run was
    /// faster. `None` where either run lacks the kernel.
    pub fn speedup_vs(&self, baseline: &RunRecord) -> [Option<f64>; 4] {
        let mut out = [None; 4];
        for (slot, (mine, theirs)) in out
            .iter_mut()
            .zip(self.kernels.iter().zip(&baseline.kernels))
        {
            if let (Some((_, a)), Some((_, b))) = (mine, theirs) {
                if *b > 0.0 {
                    *slot = Some(a / b);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};
    use ppbench_io::tempdir::TempDir;

    fn sample() -> RunRecord {
        let td = TempDir::new("report").unwrap();
        let cfg = PipelineConfig::builder()
            .scale(6)
            .edge_factor(4)
            .seed(2)
            .build();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        RunRecord::from_result(&result)
    }

    #[test]
    fn roundtrip_through_text() {
        let record = sample();
        let parsed = RunRecord::from_text(&record.to_text()).unwrap();
        assert_eq!(parsed.variant, record.variant);
        assert_eq!(parsed.scale, record.scale);
        assert_eq!(parsed.edges, record.edges);
        assert_eq!(parsed.validation_passed, Some(true));
        for k in 0..4 {
            let (a, b) = (record.kernels[k].unwrap(), parsed.kernels[k].unwrap());
            assert!((a.0 - b.0).abs() < 1e-9, "kernel {k} seconds");
            assert!((a.1 - b.1).abs() / a.1 < 1e-6, "kernel {k} rate");
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let record = sample();
        let td = TempDir::new("report").unwrap();
        let path = td.join("run.tsv");
        record.save(&path).unwrap();
        let loaded = RunRecord::load(&path).unwrap();
        assert_eq!(loaded.variant, record.variant);
        assert_eq!(loaded.edges, record.edges);
    }

    #[test]
    fn json_mentions_all_fields() {
        let record = sample();
        let json = record.to_json();
        // Canonical form: keys sorted bytewise, so `checksum` leads.
        assert!(json.starts_with("{\"checksum\":"), "{json}");
        assert!(json.contains("\"record\":\"ppbench-run-v1\""), "{json}");
        assert!(json.contains("\"variant\":\"optimized\""), "{json}");
        assert!(json.contains("\"scale\":6"), "{json}");
        assert!(json.contains("\"kernel\":3"), "{json}");
        assert!(json.contains("\"edges_per_second\""), "{json}");
        assert!(json.contains("\"validation_passed\":true"), "{json}");
    }

    #[test]
    fn json_skips_kernels_that_did_not_run() {
        let mut record = sample();
        record.kernels[2] = None;
        record.validation_passed = None;
        let json = record.to_json();
        assert!(!json.contains("\"kernel\":2"), "{json}");
        assert!(json.contains("\"validation_passed\":null"), "{json}");
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(RunRecord::from_text("").is_err(), "missing header");
        assert!(RunRecord::from_text("record\tppbench-run-v9\n").is_err());
        assert!(
            RunRecord::from_text("record\tppbench-run-v1\nkernel\t7\t1.0\t2.0\n").is_err(),
            "kernel index out of range"
        );
        assert!(
            RunRecord::from_text("record\tppbench-run-v1\nbogus\tx\n").is_err(),
            "unknown key"
        );
    }

    #[test]
    fn threads_roundtrip_and_default_to_unknown() {
        let mut record = sample();
        assert_eq!(record.threads, None);
        let json = record.to_json();
        assert!(json.contains("\"threads\":null"), "{json}");
        record.threads = Some(4);
        assert!(record.to_text().contains("threads\t4\n"));
        assert!(record.to_json().contains("\"threads\":4"));
        let parsed = RunRecord::from_text(&record.to_text()).unwrap();
        assert_eq!(parsed.threads, Some(4));
        // Legacy records without the key still parse.
        let legacy = RunRecord::from_text("record\tppbench-run-v1\nscale\t6\n").unwrap();
        assert_eq!(legacy.threads, None);
    }

    #[test]
    fn workload_and_checksum_roundtrip() {
        let td = TempDir::new("report").unwrap();
        let cfg = PipelineConfig::builder()
            .scale(6)
            .edge_factor(4)
            .seed(2)
            .workload(crate::Workload::Bfs)
            .build();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        let record = RunRecord::from_result(&result);
        assert_eq!(record.workload, "bfs");
        assert!(record.checksum.is_some());
        assert!(
            record.kernels[3].is_some(),
            "the workload reports through the kernel-3 slot"
        );
        let parsed = RunRecord::from_text(&record.to_text()).unwrap();
        assert_eq!(parsed.workload, "bfs");
        assert_eq!(parsed.checksum, record.checksum);
        let json = record.to_json();
        assert!(json.contains("\"workload\":\"bfs\""), "{json}");
        assert!(json.contains("\"checksum\":\""), "{json}");
        // PageRank runs carry the workload name but no checksum.
        let pr = sample();
        assert_eq!(pr.workload, "pagerank");
        assert_eq!(pr.checksum, None);
        assert!(pr.to_json().contains("\"checksum\":null"));
        // Legacy records without the keys parse as PageRank.
        let legacy = RunRecord::from_text("record\tppbench-run-v1\nscale\t6\n").unwrap();
        assert_eq!(legacy.workload, "pagerank");
        assert_eq!(legacy.checksum, None);
    }

    #[test]
    fn speedup_compares_rates() {
        let mut a = sample();
        let mut b = a.clone();
        a.kernels[1] = Some((1.0, 200.0));
        b.kernels[1] = Some((2.0, 100.0));
        b.kernels[2] = None;
        let s = a.speedup_vs(&b);
        assert_eq!(s[1], Some(2.0));
        assert_eq!(s[2], None);
    }

    #[test]
    fn partial_runs_serialize() {
        let td = TempDir::new("report").unwrap();
        let cfg = PipelineConfig::builder()
            .scale(5)
            .edge_factor(2)
            .seed(2)
            .build();
        let result = Pipeline::new(cfg, td.path()).run_through(1).unwrap();
        let record = RunRecord::from_result(&result);
        assert!(record.kernels[0].is_some());
        assert!(record.kernels[1].is_some());
        assert!(record.kernels[2].is_none());
        let parsed = RunRecord::from_text(&record.to_text()).unwrap();
        assert!(parsed.kernels[3].is_none());
    }
}
