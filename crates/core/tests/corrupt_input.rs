//! Corrupt-input coverage for the kernel-1 read path.
//!
//! Kernel 1 is the first consumer of on-disk state it did not produce in
//! the same process, so every class of corruption — hostile counts,
//! truncated files, missing files, count/content mismatches — must surface
//! as a clean `Err` through both `EdgeReader::read_dir_all` and
//! `kernel1::sort_file_set`, never a panic, abort, or silently wrong
//! output.

use std::path::Path;

use ppbench_core::kernel1::sort_file_set;
use ppbench_io::{Edge, EdgeReader, Manifest, SortState};
use ppbench_sort::{Algorithm, SortKey};

fn scrambled(n: u64) -> Vec<Edge> {
    (0..n)
        .map(|i| Edge::new((i * 7 + 3) % 32, (i * 5) % 32))
        .collect()
}

fn write_input(dir: &Path, edges: &[Edge]) -> Manifest {
    ppbench_io::write_edges(
        dir,
        "edges",
        2,
        edges,
        Some(5),
        Some(32),
        SortState::Unsorted,
    )
    .unwrap()
}

/// Both consumers of a corrupt directory must fail cleanly; returns the two
/// error strings for message assertions. Runs `sort_file_set` with no
/// budget (in-memory path) and with a tiny byte budget (spill path) so both
/// kernel-1 code paths see the corruption.
fn assert_both_paths_reject(dir: &Path, out_root: &Path) -> Vec<String> {
    let mut messages = Vec::new();
    let read_err = EdgeReader::read_dir_all(dir).unwrap_err();
    messages.push(read_err.to_string());
    for (label, budget) in [("inmem", None), ("spill", Some(64))] {
        let err = sort_file_set(
            dir,
            &out_root.join(label),
            1,
            SortKey::Start,
            Algorithm::Radix,
            budget,
        )
        .unwrap_err();
        messages.push(err.to_string());
    }
    messages
}

#[test]
fn hostile_edge_count_rejected_without_allocating() {
    // `edges: u64::MAX` with internally consistent per-file counts and
    // digest: only the bytes-on-disk bound can catch it, and it must do so
    // before `Vec::with_capacity` turns the lie into an abort.
    let td = ppbench_io::tempdir::TempDir::new("corrupt-k1").unwrap();
    write_input(&td.join("in"), &scrambled(20));
    let mut m = Manifest::load(&td.join("in")).unwrap();
    m.edges = u64::MAX;
    m.digest.count = u64::MAX;
    m.files[0].edges = u64::MAX - m.files[1].edges;
    m.save(&td.join("in")).unwrap();
    for msg in assert_both_paths_reject(&td.join("in"), &td.join("out")) {
        assert!(msg.contains("at most"), "{msg}");
    }
}

#[test]
fn manifest_count_disagreeing_with_contents_rejected() {
    // The manifest claims fewer edges than the files contain (an append
    // behind the manifest's back). The stream digest is what catches it.
    let td = ppbench_io::tempdir::TempDir::new("corrupt-k1").unwrap();
    let m = write_input(&td.join("in"), &scrambled(50));
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(td.join("in").join(&m.files[1].name))
        .unwrap();
    writeln!(f, "3\t9").unwrap();
    drop(f);
    for msg in assert_both_paths_reject(&td.join("in"), &td.join("out")) {
        assert!(msg.contains("digest"), "{msg}");
    }
}

#[test]
fn truncated_final_line_rejected() {
    // Chop the file mid-record (a torn write): the partial final line must
    // parse-fail or digest-fail, never be silently dropped.
    let td = ppbench_io::tempdir::TempDir::new("corrupt-k1").unwrap();
    let m = write_input(&td.join("in"), &scrambled(50));
    let path = td.join("in").join(&m.files[1].name);
    let data = std::fs::read(&path).unwrap();
    let keep = data.len() - 3;
    std::fs::write(&path, &data[..keep]).unwrap();
    let messages = assert_both_paths_reject(&td.join("in"), &td.join("out"));
    assert!(!messages.is_empty());
}

#[test]
fn manifest_naming_missing_file_rejected() {
    let td = ppbench_io::tempdir::TempDir::new("corrupt-k1").unwrap();
    let m = write_input(&td.join("in"), &scrambled(30));
    std::fs::remove_file(td.join("in").join(&m.files[0].name)).unwrap();
    let messages = assert_both_paths_reject(&td.join("in"), &td.join("out"));
    assert!(!messages.is_empty());
}

#[test]
fn corruption_leaves_no_committed_output_manifest() {
    // A failed kernel 1 must not publish a manifest for its partial
    // output — the manifest is the commit point.
    let td = ppbench_io::tempdir::TempDir::new("corrupt-k1").unwrap();
    let m = write_input(&td.join("in"), &scrambled(40));
    let path = td.join("in").join(&m.files[0].name);
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() - 5]).unwrap();
    for (label, budget) in [("inmem", None), ("spill", Some(64u64))] {
        let out = td.join(label);
        assert!(sort_file_set(
            &td.join("in"),
            &out,
            1,
            SortKey::Start,
            Algorithm::Radix,
            budget,
        )
        .is_err());
        assert!(
            !out.join(ppbench_io::MANIFEST_NAME).exists(),
            "{label}: failed sort must not commit a manifest"
        );
    }
}
