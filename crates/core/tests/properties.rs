//! Property-based tests at the pipeline level: the spec invariants must
//! hold for *every* seed, scale and option combination, not just the ones
//! the unit tests pick.

use ppbench_core::{kernel2, kernel3, Pipeline, PipelineConfig, ValidationLevel};
use ppbench_io::tempdir::TempDir;
use ppbench_sparse::{ops, spmv, Coo, Csr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full pipeline runs and validates for arbitrary small configs.
    #[test]
    fn pipeline_validates_for_arbitrary_configs(
        scale in 3u32..7,
        edge_factor in 1u64..6,
        seed: u64,
        files in 1usize..4,
        diagonal: bool,
    ) {
        let cfg = PipelineConfig::builder()
            .scale(scale)
            .edge_factor(edge_factor)
            .seed(seed)
            .num_files(files)
            .add_diagonal_to_empty(diagonal)
            .validation(ValidationLevel::Invariants)
            .build();
        let td = TempDir::new("core-prop").unwrap();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        prop_assert!(result.validation.unwrap().passed());
    }

    /// filter_matrix invariants hold on arbitrary count matrices: mass
    /// accounting, row stochasticity, and the column-elimination contract.
    #[test]
    fn filter_matrix_invariants(
        triplets in proptest::collection::vec((0u64..12, 0u64..12), 0..150),
        diagonal: bool,
    ) {
        let mut coo = Coo::<u64>::new(12, 12);
        for &(u, v) in &triplets {
            coo.push(u, v, 1);
        }
        let counts = coo.compress();
        let din_before = ops::col_sums(&counts);
        let dmax = din_before.iter().copied().max().unwrap_or(0);
        let (a, stats) = kernel2::filter_matrix(&counts, diagonal);

        prop_assert_eq!(stats.total_edge_count, triplets.len() as u64);
        prop_assert!(stats.nnz_before <= triplets.len());
        prop_assert_eq!(stats.max_in_degree, dmax);
        // Every row is stochastic or empty.
        for (r, &s) in ops::row_sums(&a).iter().enumerate() {
            if a.row_nnz(r as u64) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
            }
        }
        // Eliminated columns are empty (diagonal repair may repopulate the
        // diagonal entry of an eliminated column, which the spec's own
        // option permits — skip those).
        if !diagonal {
            for (c, &d) in din_before.iter().enumerate() {
                if (dmax > 0 && d == dmax) || d == 1 {
                    prop_assert_eq!(ops::col_sums(&a)[c], 0.0, "column {} survived", c);
                }
            }
            prop_assert_eq!(stats.diagonal_repairs, 0);
        } else {
            prop_assert_eq!(stats.dangling_rows, 0);
        }
    }

    /// PageRank update properties for arbitrary stochastic matrices: mass
    /// conservation (no dangling rows), positivity, and linearity.
    #[test]
    fn pagerank_step_properties(
        triplets in proptest::collection::vec((0u64..8, 0u64..8), 8..80),
        seed: u64,
        damping in 0.05f64..0.95,
    ) {
        let mut coo = Coo::<u64>::new(8, 8);
        for &(u, v) in &triplets {
            coo.push(u, v, 1);
        }
        let counts = coo.compress();
        prop_assume!((0..8).all(|r| counts.row_nnz(r) > 0));
        let a: Csr<f64> = ops::normalize_rows(&counts);
        let r0 = kernel3::init_ranks(8, seed);
        let r1 = kernel3::step(&r0, |x| spmv::vxm(x, &a), damping);
        let mass0: f64 = r0.iter().sum();
        let mass1: f64 = r1.iter().sum();
        prop_assert!((mass0 - mass1).abs() < 1e-9, "mass {mass0} -> {mass1}");
        prop_assert!(r1.iter().all(|&x| x > 0.0), "teleport keeps ranks positive");
    }

    /// Rank-order utilities: tau is symmetric, reflexive and bounded for
    /// arbitrary vectors.
    #[test]
    fn kendall_tau_axioms(
        a in proptest::collection::vec(0.0f64..1.0, 2..60),
        shift in 0.0f64..0.5,
    ) {
        use ppbench_core::rank::kendall_tau;
        let n = a.len();
        let b: Vec<f64> = a.iter().rev().map(|x| x + shift).collect();
        let tau_ab = kendall_tau(&a, &b);
        let tau_ba = kendall_tau(&b, &a);
        prop_assert!((tau_ab - tau_ba).abs() < 1e-12, "symmetry");
        prop_assert!((-1.0..=1.0).contains(&tau_ab));
        prop_assert_eq!(kendall_tau(&a, &a), 1.0, "reflexivity");
        // Monotone transforms preserve the ordering entirely.
        let scaled: Vec<f64> = a.iter().map(|x| 3.0 * x + 1.0).collect();
        prop_assert_eq!(kendall_tau(&a, &scaled), 1.0);
        let _ = n;
    }

    /// The balanced-fused kernel-3 path (what the parallel backend runs)
    /// agrees with the serial scatter oracle within 1e-12 under every
    /// dangling strategy, for arbitrary hub-skewed matrices and chunk
    /// counts — and the narrow-index form is bit-identical to the wide one.
    #[test]
    fn fused_pagerank_matches_serial_oracle(
        triplets in proptest::collection::vec(
            ((0u64..5, 0u64..10).prop_map(|(p, v)| if p < 3 { 0 } else { v }),
             (0u64..5, 0u64..10).prop_map(|(p, v)| if p < 3 { 0 } else { v })),
            0..80,
        ),
        seed: u64,
        chunks in 1usize..5,
    ) {
        let n = 10u64;
        let mut coo = Coo::<u64>::new(n, n);
        for &(u, v) in &triplets {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        prop_assert!(check_fused_against_oracle(&a, seed, chunks) < 1e-12);
    }
}

/// Runs both kernel-3 paths on `a` under all three dangling strategies and
/// returns the worst L1 gap; panics if narrow and wide fused results ever
/// differ bitwise.
fn check_fused_against_oracle(a: &Csr<f64>, seed: u64, chunks: usize) -> f64 {
    use ppbench_core::kernel3::{DanglingInfo, DanglingStrategy, PageRankOptions};
    use ppbench_sparse::{vector, Csr32};

    let at = a.transpose();
    let narrow = Csr32::try_from_wide(&at).unwrap();
    let mask = ops::empty_rows(a);
    let info = DanglingInfo::from_mask(&mask);
    let boundaries = spmv::balanced_boundaries(at.row_ptr(), chunks);
    let mut worst = 0.0f64;
    for strategy in [
        DanglingStrategy::Omit,
        DanglingStrategy::Redistribute,
        DanglingStrategy::Sink,
    ] {
        let opts = PageRankOptions {
            damping: 0.85,
            max_iterations: 12,
            dangling: strategy,
            tolerance: None,
        };
        let r0 = kernel3::init_ranks(a.rows(), seed);
        let oracle = kernel3::run(r0.clone(), |x| spmv::vxm(x, a), &mask, &opts);
        let fused = kernel3::run_into(
            r0.clone(),
            |r, next, coeffs| spmv::step_fused(r, &narrow.view(), next, coeffs, &boundaries),
            &info,
            &opts,
        );
        let wide = kernel3::run_into(
            r0,
            |r, next, coeffs| spmv::step_fused(r, &at.view(), next, coeffs, &boundaries),
            &info,
            &opts,
        );
        assert_eq!(wide.ranks, fused.ranks, "u32/u64 fused paths diverged");
        worst = worst.max(vector::l1_distance(&fused.ranks, &oracle.ranks));
    }
    worst
}

/// The degenerate shapes the fuzzer only hits by luck, pinned explicitly:
/// the empty matrix (every row dangling), a single hub that every vertex
/// points at (the hub itself dangling), and a zero-vertex matrix.
#[test]
fn fused_pagerank_edge_shapes() {
    // All-dangling: no edges at all.
    let empty = ops::normalize_rows(&Coo::<u64>::new(8, 8).compress());
    // Single hub: every other vertex points only at vertex 0.
    let mut coo = Coo::<u64>::new(8, 8);
    for v in 1..8 {
        coo.push(v, 0, 1);
    }
    let hub = ops::normalize_rows(&coo.compress());
    // Zero vertices: nothing to rank, nothing to crash on.
    let none = ops::normalize_rows(&Coo::<u64>::new(0, 0).compress());
    for (name, m) in [
        ("all-dangling", empty),
        ("single-hub", hub),
        ("empty", none),
    ] {
        for chunks in [1, 3] {
            let gap = check_fused_against_oracle(&m, 42, chunks);
            assert!(gap < 1e-12, "{name} with {chunks} chunks: L1 gap {gap}");
        }
    }
}
