//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * kernel-1 sort algorithm (radix vs counting vs comparison vs parallel
//!   vs out-of-core);
//! * kernel-3 SpMV form (CSR scatter vs CSC gather vs parallel gather);
//! * kernel-0 generator (Kronecker vs PPL vs Erdős–Rényi) and the cost of
//!   the vertex permutation / edge shuffle options;
//! * file-count choice for the edge writer (the spec's free parameter).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppbench_gen::{EdgeGenerator, GeneratorKind, GraphSpec, Kronecker};
use ppbench_io::tempdir::TempDir;
use ppbench_io::{Edge, EdgeEncoding, EdgeReader, EdgeWriter, SortState};
use ppbench_sort::{Algorithm, ExternalSorter, SortKey};
use ppbench_sparse::{ops, spmv, Csr};

const SCALE: u32 = 12;
const EDGE_FACTOR: u64 = 16;

fn test_edges() -> (GraphSpec, Vec<Edge>) {
    let spec = GraphSpec::new(SCALE, EDGE_FACTOR);
    (spec, Kronecker::new(spec, 99).edges())
}

fn bench_sort_algorithms(c: &mut Criterion) {
    let (spec, edges) = test_edges();
    let mut group = c.benchmark_group("ablation_sort_algorithm");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for alg in Algorithm::ALL {
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter_batched(
                || edges.clone(),
                |mut v| {
                    alg.sort(&mut v, SortKey::Start, Some(spec.num_vertices()));
                    v
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    // Out-of-core with a budget forcing ~8 runs.
    group.bench_function("external-8runs", |b| {
        let td = TempDir::new("bench-extsort").unwrap();
        let budget = edges.len() / 8;
        b.iter(|| {
            let sorter = ExternalSorter::new(td.path(), budget, SortKey::Start).unwrap();
            let mut n = 0u64;
            sorter
                .sort(edges.iter().map(|&e| Ok(e)), |_| {
                    n += 1;
                    Ok(())
                })
                .unwrap();
            n
        });
    });
    group.finish();
}

fn build_matrix() -> Csr<f64> {
    let (spec, mut edges) = test_edges();
    ppbench_sort::radix_sort(&mut edges, SortKey::Start);
    let tuples: Vec<(u64, u64)> = edges.iter().map(|e| (e.u, e.v)).collect();
    let counts = Csr::<u64>::from_sorted_edges(spec.num_vertices(), &tuples);
    ops::normalize_rows(&counts)
}

fn bench_spmv_forms(c: &mut Criterion) {
    let a = build_matrix();
    let at = a.transpose();
    let n = a.rows() as usize;
    let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let mut group = c.benchmark_group("ablation_spmv_form");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("csr-scatter", |b| b.iter(|| spmv::vxm(&x, &a)));
    group.bench_function("csc-gather", |b| b.iter(|| spmv::vxm_gather(&x, &at)));
    group.bench_function("csc-gather-parallel", |b| {
        b.iter(|| spmv::par_vxm_gather(&x, &at))
    });
    group.bench_function("gather-including-transpose", |b| {
        // What it costs if the transpose is NOT amortized across iterations.
        b.iter(|| spmv::vxm_gather(&x, &a.transpose()))
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let spec = GraphSpec::new(SCALE, EDGE_FACTOR);
    let mut group = c.benchmark_group("ablation_generator");
    group.throughput(Throughput::Elements(spec.num_edges()));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for kind in GeneratorKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let generator = kind.build(spec, 5);
            b.iter(|| generator.edges());
        });
    }
    group.bench_function("kronecker-no-permute", |b| {
        let g = Kronecker::new(spec, 5).without_vertex_permutation();
        b.iter(|| g.edges());
    });
    group.bench_function("kronecker-shuffled", |b| {
        let g = Kronecker::new(spec, 5).with_edge_shuffle();
        b.iter(|| g.edges());
    });
    group.bench_function("kronecker-parallel", |b| {
        let g = Kronecker::new(spec, 5);
        b.iter(|| g.edges_parallel(1 << 12));
    });
    group.finish();
}

fn bench_file_count(c: &mut Criterion) {
    let (spec, edges) = test_edges();
    let mut group = c.benchmark_group("ablation_file_count");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for files in [1usize, 4, 16, 64] {
        group.bench_function(BenchmarkId::from_parameter(files), |b| {
            b.iter(|| {
                let td = TempDir::new("bench-files").unwrap();
                let mut w =
                    EdgeWriter::create(td.path(), "edges", files, edges.len() as u64).unwrap();
                w.write_all(&edges).unwrap();
                w.finish(
                    Some(spec.scale()),
                    Some(spec.num_vertices()),
                    SortState::Unsorted,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    // How much of the file kernels' cost is the spec's decimal text
    // encoding itself? Round-trip the same edges through text and binary.
    let (spec, edges) = test_edges();
    let mut group = c.benchmark_group("ablation_encoding");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for encoding in [EdgeEncoding::Text, EdgeEncoding::Binary] {
        let label = match encoding {
            EdgeEncoding::Text => "text-roundtrip",
            EdgeEncoding::Binary => "binary-roundtrip",
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let td = TempDir::new("bench-encoding").unwrap();
                let mut w = EdgeWriter::create_with_encoding(
                    td.path(),
                    "edges",
                    1,
                    edges.len() as u64,
                    encoding,
                )
                .unwrap();
                w.write_all(&edges).unwrap();
                w.finish(
                    Some(spec.scale()),
                    Some(spec.num_vertices()),
                    SortState::Unsorted,
                )
                .unwrap();
                let (_, got) = EdgeReader::read_dir_all(td.path()).unwrap();
                got.len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    ablation,
    bench_sort_algorithms,
    bench_spmv_forms,
    bench_generators,
    bench_file_count,
    bench_encoding
);
criterion_main!(ablation);
