//! Criterion microbenchmarks of the four pipeline kernels, one group per
//! paper figure (Figures 4–7), with one benchmark per implementation
//! variant.
//!
//! These complement the `figures` binary: the binary sweeps problem sizes
//! to reproduce the figures' *shape*; these pin each kernel at a fixed
//! scale for statistically tight regression tracking.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppbench_core::{PipelineConfig, Variant};
use ppbench_io::tempdir::TempDir;

/// Benchmark scale: 2^10 vertices, 2^14 edges — small enough that a full
/// `cargo bench` stays in seconds, large enough to be out of trivial-cache
/// territory for the file kernels.
const SCALE: u32 = 10;

fn config(variant: Variant) -> PipelineConfig {
    PipelineConfig::builder()
        .scale(SCALE)
        .seed(7)
        .variant(variant)
        .validation(ppbench_core::ValidationLevel::None)
        .build()
}

fn bench_kernel0(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_kernel0_generate");
    let edges = PipelineConfig::builder()
        .scale(SCALE)
        .build()
        .spec
        .num_edges();
    group.throughput(Throughput::Elements(edges));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for variant in Variant::ALL {
        let cfg = config(variant);
        let backend = variant.backend();
        group.bench_function(BenchmarkId::from_parameter(variant.name()), |b| {
            b.iter(|| {
                let td = TempDir::new("bench-k0").unwrap();
                backend.kernel0(&cfg, td.path()).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_kernel1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_kernel1_sort");
    let edges = PipelineConfig::builder()
        .scale(SCALE)
        .build()
        .spec
        .num_edges();
    group.throughput(Throughput::Elements(edges));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for variant in Variant::ALL {
        let cfg = config(variant);
        let backend = variant.backend();
        let input = TempDir::new("bench-k1-in").unwrap();
        backend.kernel0(&cfg, input.path()).unwrap();
        group.bench_function(BenchmarkId::from_parameter(variant.name()), |b| {
            b.iter(|| {
                let out = TempDir::new("bench-k1-out").unwrap();
                backend.kernel1(&cfg, input.path(), out.path()).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_kernel2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_kernel2_filter");
    let edges = PipelineConfig::builder()
        .scale(SCALE)
        .build()
        .spec
        .num_edges();
    group.throughput(Throughput::Elements(edges));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for variant in Variant::ALL {
        let cfg = config(variant);
        let backend = variant.backend();
        let k0 = TempDir::new("bench-k2-k0").unwrap();
        let k1 = TempDir::new("bench-k2-k1").unwrap();
        backend.kernel0(&cfg, k0.path()).unwrap();
        backend.kernel1(&cfg, k0.path(), k1.path()).unwrap();
        group.bench_function(BenchmarkId::from_parameter(variant.name()), |b| {
            b.iter(|| backend.kernel2(&cfg, k1.path()).unwrap());
        });
    }
    group.finish();
}

fn bench_kernel3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_kernel3_pagerank");
    let cfg0 = PipelineConfig::builder().scale(SCALE).build();
    // 20 iterations over M edges, the paper's 20·M work-item convention.
    group.throughput(Throughput::Elements(cfg0.spec.num_edges() * 20));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // Build the matrix once with the optimized backend; kernel 3 input is
    // backend-independent.
    let prep = Variant::Optimized.backend();
    let k0 = TempDir::new("bench-k3-k0").unwrap();
    let k1 = TempDir::new("bench-k3-k1").unwrap();
    let base_cfg = config(Variant::Optimized);
    prep.kernel0(&base_cfg, k0.path()).unwrap();
    prep.kernel1(&base_cfg, k0.path(), k1.path()).unwrap();
    let matrix = prep.kernel2(&base_cfg, k1.path()).unwrap().matrix;
    for variant in Variant::ALL {
        let cfg = config(variant);
        let backend = variant.backend();
        group.bench_function(BenchmarkId::from_parameter(variant.name()), |b| {
            b.iter(|| backend.kernel3(&cfg, &matrix).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_kernel0,
    bench_kernel1,
    bench_kernel2,
    bench_kernel3
);
criterion_main!(kernels);
