//! Microbenchmarks of the substrate layers, used to attribute kernel-level
//! performance to its components (the paper's "performance predictions can
//! be made based on simple computing hardware models" angle: these numbers
//! are the model inputs).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppbench_gen::{EdgeGenerator, FeistelPermutation};
use ppbench_io::checksum::EdgeDigest;
use ppbench_io::{atoi, format, Edge};
use ppbench_prng::{Pcg32, Rng64, SeedableRng64, SplitMix64, Xoshiro256pp};
use ppbench_sparse::{eigen, ops, spmv, Coo, Csr};

const N: usize = 1 << 16;

fn bench_prng(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_prng");
    group.throughput(Throughput::Elements(N as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("xoshiro256pp", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| (0..N).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add));
    });
    group.bench_function("pcg32", |b| {
        let mut rng = Pcg32::seed_from_u64(1);
        b.iter(|| (0..N).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add));
    });
    group.bench_function("splitmix64", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| (0..N).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add));
    });
    group.bench_function("uniform-f64", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| (0..N).map(|_| rng.next_f64()).sum::<f64>());
    });
    group.finish();
}

fn bench_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_text");
    group.throughput(Throughput::Elements(N as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let values: Vec<u64> = (0..N as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    let lines: Vec<String> = values.iter().map(|v| format!("{v}\t{v}")).collect();

    group.bench_function("format-handrolled", |b| {
        let mut buf = Vec::with_capacity(N * 24);
        b.iter(|| {
            buf.clear();
            for &v in &values {
                format::encode_line(Edge::new(v, v), &mut buf);
            }
            buf.len()
        });
    });
    group.bench_function("format-std", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &v in &values {
                total += format!("{v}\t{v}\n").len();
            }
            total
        });
    });
    group.bench_function("parse-handrolled", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for line in &lines {
                let e = format::decode_line(line.as_bytes()).unwrap();
                acc = acc.wrapping_add(e.u);
            }
            acc
        });
    });
    group.bench_function("parse-std", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for line in &lines {
                let mut it = line.split('\t');
                let u: u64 = it.next().unwrap().parse().unwrap();
                let _v: u64 = it.next().unwrap().parse().unwrap();
                acc = acc.wrapping_add(u);
            }
            acc
        });
    });
    group.bench_function("atoi-roundtrip", |b| {
        let mut buf = [0u8; atoi::MAX_DIGITS];
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &values {
                let len = atoi::format_u64(v, &mut buf);
                acc = acc.wrapping_add(atoi::parse_u64(&buf[..len]).unwrap());
            }
            acc
        });
    });
    group.finish();
}

fn bench_permutation_and_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_misc");
    group.throughput(Throughput::Elements(N as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("feistel-apply", |b| {
        let p = FeistelPermutation::new(20, 3);
        b.iter(|| {
            (0..N as u64)
                .map(|i| p.apply(i))
                .fold(0u64, u64::wrapping_add)
        });
    });
    group.bench_function("edge-digest", |b| {
        let edges: Vec<Edge> = (0..N as u64).map(|i| Edge::new(i, i * 3)).collect();
        b.iter(|| EdgeDigest::of_edges(&edges));
    });
    group.finish();
}

fn bench_matrix_construction(c: &mut Criterion) {
    let spec = ppbench_gen::GraphSpec::new(12, 8);
    let mut edges = ppbench_gen::Kronecker::new(spec, 4).edges();
    ppbench_sort::radix_sort(&mut edges, ppbench_sort::SortKey::Start);
    let tuples: Vec<(u64, u64)> = edges.iter().map(|e| (e.u, e.v)).collect();
    let mut group = c.benchmark_group("substrate_matrix");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("csr-from-sorted-edges", |b| {
        b.iter(|| Csr::<u64>::from_sorted_edges(spec.num_vertices(), &tuples));
    });
    group.bench_function("csr-via-coo", |b| {
        b.iter(|| Coo::<u64>::from_edges(spec.num_vertices(), tuples.iter().copied()).compress());
    });
    let counts = Csr::<u64>::from_sorted_edges(spec.num_vertices(), &tuples);
    group.bench_function("normalize-rows", |b| {
        b.iter(|| ops::normalize_rows(&counts))
    });
    group.bench_function("transpose", |b| {
        let a = ops::normalize_rows(&counts);
        b.iter(|| a.transpose());
    });
    group.finish();
}

fn bench_eigensolver(c: &mut Criterion) {
    let spec = ppbench_gen::GraphSpec::new(10, 8);
    let mut edges = ppbench_gen::Kronecker::new(spec, 4).edges();
    ppbench_sort::radix_sort(&mut edges, ppbench_sort::SortKey::Start);
    let tuples: Vec<(u64, u64)> = edges.iter().map(|e| (e.u, e.v)).collect();
    let counts = Csr::<u64>::from_sorted_edges(spec.num_vertices(), &tuples);
    let a = ops::normalize_rows(&ops::add_diagonal_where(
        &counts,
        |i| counts.row_nnz(i) == 0,
        1,
    ));
    let at = a.transpose();
    let mut group = c.benchmark_group("substrate_eigen");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for iters in [20usize, 100] {
        group.bench_function(BenchmarkId::new("power-iteration", iters), |b| {
            b.iter(|| {
                let start = vec![1.0 / spec.num_vertices() as f64; spec.num_vertices() as usize];
                eigen::power_iteration(|v| spmv::mxv(&at, v), &start, iters, 0.0)
            });
        });
    }
    group.finish();
}

criterion_group!(
    substrates,
    bench_prng,
    bench_text,
    bench_permutation_and_digest,
    bench_matrix_construction,
    bench_eigensolver
);
criterion_main!(substrates);
