//! Serving-layer bench: latency and saturation of the event-loop front
//! end.
//!
//! The tentpole question this sweep answers: once the pipeline is
//! infrastructure (a long-lived `ppserved` with a nonblocking event
//! loop, request coalescing, and a tiered result cache), what does a
//! request actually cost? One pipeline config is prewarmed to `Done`, so
//! the measured load exercises the serving path — parse, admission,
//! cache hit, render — rather than re-running kernels. Two load shapes
//! are measured:
//!
//! * **open** rows offer a fixed arrival rate (`offered_rps`) open-loop,
//!   with each request's latency measured from its *scheduled* arrival —
//!   coordinated omission cannot hide a stall. Sweeping the rate maps
//!   the latency/throughput curve up to saturation.
//! * **burst** rows open every connection before releasing any request,
//!   demonstrating concurrent-connection capacity (`max_concurrent`) far
//!   beyond the old thread-per-connection cap of 64.
//!
//! The server under test is in-process by default (good for CI smoke);
//! `spawn` runs the sibling `ppserved` binary in its own process so the
//! driver and server each get their own file-descriptor budget — which
//! is what the 10k-connection burst row needs on a 20k-fd rlimit.
//!
//! Results land in `BENCH_serve.json` as canonical JSON; `--check`
//! re-validates the committed file's schema and cross-checks every row's
//! `achieved_rps` against its own `requests`/`seconds` so stale or
//! hand-edited rates cannot survive CI.

use std::io::BufRead;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppbench_core::json::{JsonArray, JsonObject};
use ppbench_serve::loadgen::{run_load, LoadConfig, LoadReport};
use ppbench_serve::{http_request, HttpServer, Json, Service, ServiceConfig};

/// Version tag written into the JSON so schema changes are explicit.
pub const SCHEMA_VERSION: &str = "ppbench-serve-v1";

/// Top-level keys of the benchmark file, sorted (canonical order).
pub const TOP_KEYS: &[&str] = &[
    "benchmark",
    "edge_factor",
    "results",
    "scale",
    "seed",
    "workers",
];

/// Keys of each result row, sorted (canonical order).
pub const ROW_KEYS: &[&str] = &[
    "achieved_rps",
    "errors",
    "max_concurrent",
    "mode",
    "offered_rps",
    "p50_ms",
    "p99_ms",
    "requests",
    "seconds",
];

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Graph scale of the prewarmed config (vertices = 2^scale).
    pub scale: u32,
    /// Edges per vertex of the prewarmed config.
    pub edge_factor: u64,
    /// Seed of the prewarmed config.
    pub seed: u64,
    /// Worker threads in the service under test.
    pub workers: usize,
    /// Offered arrival rates (req/s) for the open-loop rows.
    pub rates: Vec<f64>,
    /// Requests per open-loop row.
    pub requests: usize,
    /// Connection counts for the burst rows.
    pub bursts: Vec<usize>,
    /// Run the sibling `ppserved` binary in its own process instead of
    /// an in-process server (separate fd budgets; needed for 10k+
    /// bursts).
    pub spawn: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scale: 10,
            edge_factor: 8,
            seed: 1,
            workers: 2,
            rates: vec![500.0, 1000.0, 2000.0, 4000.0],
            requests: 2000,
            bursts: vec![256, 4096],
            spawn: false,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// `"open"` (fixed-rate arrivals) or `"burst"` (all at once).
    pub mode: &'static str,
    /// Offered arrival rate for open rows; 0 for burst rows.
    pub offered_rps: f64,
    /// Requests that completed with a response.
    pub requests: u64,
    /// Requests that errored or timed out.
    pub errors: u64,
    /// Wall-clock seconds for the whole row.
    pub seconds: f64,
    /// `requests / seconds`.
    pub achieved_rps: f64,
    /// Median latency, milliseconds (from scheduled arrival for open
    /// rows — coordinated-omission-safe).
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Peak concurrently-open connections observed by the driver.
    pub max_concurrent: u64,
}

/// The server under test: in-process, or a spawned `ppserved` child.
enum Server {
    InProcess {
        addr: String,
        thread: Option<std::thread::JoinHandle<()>>,
    },
    Spawned {
        addr: String,
        child: std::process::Child,
    },
}

impl Server {
    fn addr(&self) -> &str {
        match self {
            Server::InProcess { addr, .. } | Server::Spawned { addr, .. } => addr,
        }
    }

    /// Graceful drain: `POST /shutdown`, then join/wait.
    fn stop(mut self) -> Result<(), String> {
        let addr = self.addr().to_string();
        let response = http_request(addr.as_str(), "POST", "/shutdown", Some(""))
            .map_err(|e| format!("shutdown request to {addr}: {e}"))?;
        if response.status != 202 {
            return Err(format!("shutdown returned {}", response.status));
        }
        match &mut self {
            Server::InProcess { thread, .. } => {
                if let Some(thread) = thread.take() {
                    thread
                        .join()
                        .map_err(|_| "server thread panicked".to_string())?;
                }
            }
            Server::Spawned { child, .. } => {
                let status = child
                    .wait()
                    .map_err(|e| format!("waiting for ppserved: {e}"))?;
                if !status.success() {
                    return Err(format!("ppserved exited with {status}"));
                }
            }
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Server::Spawned { child, .. } = self {
            // Best-effort: don't leave an orphan daemon if the sweep
            // failed before the graceful stop. A kill error means the
            // child already exited; either way it still needs reaping,
            // and the exit status of a killed child is noise.
            let _killed = child.kill();
            let _reaped = child.wait();
        }
    }
}

fn start_in_process(cfg: &SweepConfig) -> Result<Server, String> {
    let service = Service::start(ServiceConfig {
        workers: cfg.workers,
        queue_depth: 64,
        work_root: std::env::temp_dir().join(format!("ppbench-servebench-{}", std::process::id())),
        ..ServiceConfig::default()
    })
    .map_err(|e| format!("cannot start service: {e}"))?;
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(service))
        .map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("no bound address: {e}"))?
        .to_string();
    let thread = std::thread::spawn(move || server.run());
    Ok(Server::InProcess {
        addr,
        thread: Some(thread),
    })
}

/// Locates the `ppserved` binary next to the running executable
/// (`target/<profile>/`), stepping out of `deps/` when invoked from a
/// test harness.
fn ppserved_path() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| "executable has no parent directory".to_string())?
        .to_path_buf();
    if dir.file_name().is_some_and(|f| f == "deps") {
        dir.pop();
    }
    let path = dir.join("ppserved");
    if path.is_file() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found — build it first (cargo build --release -p ppbench-serve)",
            path.display()
        ))
    }
}

fn start_spawned(cfg: &SweepConfig) -> Result<Server, String> {
    let path = ppserved_path()?;
    let mut child = std::process::Command::new(&path)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &cfg.workers.to_string(),
            "--queue-depth",
            "64",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", path.display()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "ppserved stdout was not captured".to_string())?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .ok_or_else(|| "ppserved exited before printing its address".to_string())?
        .map_err(|e| format!("reading ppserved stdout: {e}"))?;
    let addr = banner
        .split_once("http://")
        .map(|(_, rest)| rest)
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| format!("cannot parse ppserved banner: {banner:?}"))?
        .to_string();
    // Keep draining the child's stdout so a full pipe can never block it.
    std::thread::spawn(move || lines.for_each(drop));
    Ok(Server::Spawned { addr, child })
}

/// Submits the sweep's pipeline config once and polls it to `Done`, so
/// every measured request afterwards is a cache hit.
fn prewarm(addr: &str, body: &str) -> Result<(), String> {
    let response = http_request(addr, "POST", "/runs", Some(body))
        .map_err(|e| format!("prewarm submit to {addr}: {e}"))?;
    if response.status != 202 {
        return Err(format!(
            "prewarm submit returned {}: {}",
            response.status, response.body
        ));
    }
    let id = Json::parse(&response.body)
        .ok()
        .and_then(|v| v.get("id").and_then(Json::as_u64))
        .ok_or_else(|| format!("prewarm receipt has no id: {}", response.body))?;
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let poll = http_request(addr, "GET", &format!("/runs/{id}"), None)
            .map_err(|e| format!("prewarm poll: {e}"))?;
        let state = Json::parse(&poll.body)
            .ok()
            .and_then(|v| v.get("state").and_then(Json::as_str).map(str::to_string));
        match state.as_deref() {
            Some("done") => return Ok(()),
            Some("failed") => return Err(format!("prewarm run failed: {}", poll.body)),
            _ if Instant::now() > deadline => {
                return Err("prewarm did not finish within 600 s".to_string())
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn to_row(mode: &'static str, offered_rps: f64, report: &LoadReport) -> Result<SweepRow, String> {
    if report.completed == 0 {
        return Err(format!(
            "{mode} row completed no requests ({} attempted, {} errors)",
            report.attempted, report.errors
        ));
    }
    Ok(SweepRow {
        mode,
        offered_rps,
        requests: report.completed as u64,
        errors: report.errors as u64,
        seconds: report.seconds,
        achieved_rps: report.achieved_rps,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        max_concurrent: report.max_concurrent as u64,
    })
}

/// Runs the full sweep: start a server (in-process or spawned), prewarm
/// the config, measure every open-loop rate, then every burst size, and
/// stop the server gracefully. Row order is deterministic: open rows in
/// rate order, then burst rows in size order.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    let server = if cfg.spawn {
        start_spawned(cfg)?
    } else {
        start_in_process(cfg)?
    };
    let body = format!(
        "{{\"scale\":{},\"edge_factor\":{},\"seed\":{}}}",
        cfg.scale, cfg.edge_factor, cfg.seed
    );
    prewarm(server.addr(), &body)?;

    let load = |requests: usize, rate: f64| -> Result<LoadReport, String> {
        run_load(&LoadConfig {
            addr: server.addr().to_string(),
            method: "POST".to_string(),
            path: "/runs".to_string(),
            body: body.clone(),
            requests,
            rate,
            timeout: Duration::from_secs(30),
            max_open: 16 * 1024,
        })
        .map_err(|e| format!("load run failed: {e}"))
    };

    let mut rows = Vec::new();
    for &rate in &cfg.rates {
        if rate <= 0.0 {
            return Err(format!("open-loop rate must be positive, got {rate}"));
        }
        rows.push(to_row("open", rate, &load(cfg.requests, rate)?)?);
    }
    for &burst in &cfg.bursts {
        if burst == 0 {
            return Err("burst size must be positive".to_string());
        }
        rows.push(to_row("burst", 0.0, &load(burst, 0.0)?)?);
    }
    server.stop()?;
    Ok(rows)
}

/// Renders the sweep as the canonical `BENCH_serve.json` document.
pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_str("mode", row.mode)
            .set_f64("offered_rps", row.offered_rps)
            .set_u64("requests", row.requests)
            .set_u64("errors", row.errors)
            .set_f64("seconds", row.seconds)
            .set_f64("achieved_rps", row.achieved_rps)
            .set_f64("p50_ms", row.p50_ms)
            .set_f64("p99_ms", row.p99_ms)
            .set_u64("max_concurrent", row.max_concurrent);
        results.push_obj(&entry);
    }
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", SCHEMA_VERSION)
        .set_u64("edge_factor", cfg.edge_factor)
        .set_raw("results", results.render())
        .set_u64("scale", u64::from(cfg.scale))
        .set_u64("seed", cfg.seed)
        .set_u64("workers", cfg.workers as u64);
    obj.render()
}

/// Validates a `BENCH_serve.json` document: correct version tag, exactly
/// [`TOP_KEYS`] at the top level, at least one result row with exactly
/// [`ROW_KEYS`], and every row's `achieved_rps` consistent with its own
/// `requests / seconds` (stale or hand-edited rates are rejected).
pub fn check_schema(text: &str) -> Result<(), String> {
    crate::schema::check_flat_schema(text, SCHEMA_VERSION, TOP_KEYS, ROW_KEYS)?;
    crate::schema::check_rate_consistency(
        text,
        "requests",
        "seconds",
        &[("achieved_rps", 1.0)],
        0.01,
    )
}

/// Parses a comma-separated list of positive rates, e.g. `500,1000,2000`.
pub fn parse_rate_list(s: &str) -> Option<Vec<f64>> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let r: f64 = part.trim().parse().ok()?;
        if !r.is_finite() || r <= 0.0 {
            return None;
        }
        out.push(r);
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scale: 7,
            edge_factor: 4,
            seed: 1,
            workers: 1,
            rates: vec![400.0],
            requests: 80,
            bursts: vec![48],
            spawn: false,
        }
    }

    #[test]
    fn sweep_measures_every_point_and_passes_its_own_schema_check() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), 2, "one open row + one burst row");
        assert_eq!(rows[0].mode, "open");
        assert_eq!(rows[0].offered_rps, 400.0);
        assert_eq!(rows[1].mode, "burst");
        assert_eq!(rows[1].offered_rps, 0.0);
        for row in &rows {
            assert!(row.requests > 0, "{row:?}");
            assert!(row.seconds > 0.0, "{row:?}");
            assert!(row.p99_ms >= row.p50_ms, "{row:?}");
        }
        assert!(
            rows[1].max_concurrent >= 48,
            "burst must hold every connection open at once: {:?}",
            rows[1]
        );
        let json = to_json(&cfg, &rows);
        check_schema(&json).unwrap();
    }

    #[test]
    fn schema_check_rejects_drift_and_inconsistent_rates() {
        let cfg = tiny_cfg();
        let row = SweepRow {
            mode: "open",
            offered_rps: 400.0,
            requests: 100,
            errors: 0,
            seconds: 0.25,
            achieved_rps: 400.0,
            p50_ms: 1.0,
            p99_ms: 2.0,
            max_concurrent: 10,
        };
        let json = to_json(&cfg, std::slice::from_ref(&row));
        check_schema(&json).unwrap();
        // Missing row key.
        let missing = json.replacen("\"p99_ms\":", "\"p99\":", 1);
        assert!(check_schema(&missing).is_err());
        // Extra top-level key.
        let extra = json.replacen("{\"benchmark\"", "{\"bonus\":1,\"benchmark\"", 1);
        assert!(check_schema(&extra).is_err());
        // Wrong version tag.
        let wrong = json.replace(SCHEMA_VERSION, "ppbench-serve-v9");
        assert!(check_schema(&wrong).is_err());
        // A rate that disagrees with requests/seconds.
        let drifted = json.replace("\"achieved_rps\":400", "\"achieved_rps\":500");
        assert!(check_schema(&drifted).is_err());
        // Empty results.
        assert!(check_schema(&to_json(&cfg, &[])).is_err());
    }

    #[test]
    fn rate_list_parses_strictly() {
        assert_eq!(parse_rate_list("500"), Some(vec![500.0]));
        assert_eq!(
            parse_rate_list("500,1000,2500.5"),
            Some(vec![500.0, 1000.0, 2500.5])
        );
        assert_eq!(parse_rate_list("0"), None);
        assert_eq!(parse_rate_list("-5"), None);
        assert_eq!(parse_rate_list("junk"), None);
        assert_eq!(parse_rate_list(""), None);
    }
}
