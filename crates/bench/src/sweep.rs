//! Scale × variant sweeps: the measurement loops behind Figures 4–7.

use std::path::Path;

use ppbench_core::{Pipeline, PipelineConfig, PipelineResult, ValidationLevel, Variant};
use ppbench_io::tempdir::TempDir;

/// One measured point: a variant at a scale, with the four kernel rates.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Backend that ran.
    pub variant: Variant,
    /// Scale factor.
    pub scale: u32,
    /// Edge count M (the x-axis of Figures 4–7).
    pub edges: u64,
    /// Edges/second for kernels 0–3 (kernel 3 already includes the ×20).
    pub rates: [f64; 4],
    /// Seconds for kernels 0–3.
    pub seconds: [f64; 4],
}

impl SweepPoint {
    fn from_result(variant: Variant, r: &PipelineResult) -> ppbench_core::Result<Self> {
        let (Some(k0), Some(k1), Some(k2), Some(k3)) = (
            r.kernel0.as_ref(),
            r.kernel1.as_ref(),
            r.kernel2.as_ref(),
            r.kernel3.as_ref(),
        ) else {
            return Err(ppbench_core::Error::Contract(
                "sweep requires a full pipeline run (kernels 0-3)".to_string(),
            ));
        };
        let (t0, t1, t2, t3) = (k0.timing, k1.timing, k2.timing, k3.timing);
        Ok(SweepPoint {
            variant,
            scale: r.scale,
            edges: r.edges,
            rates: [t0.rate(), t1.rate(), t2.rate(), t3.rate()],
            seconds: [t0.seconds, t1.seconds, t2.seconds, t3.seconds],
        })
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Scales to run (each gives one x-axis point).
    pub scales: Vec<u32>,
    /// Variants to run (each gives one series).
    pub variants: Vec<Variant>,
    /// Edges per vertex (16 in the paper).
    pub edge_factor: u64,
    /// Master seed.
    pub seed: u64,
    /// Files per kernel-0/1 output.
    pub num_files: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scales: (16..=22).collect(),
            variants: Variant::ALL.to_vec(),
            edge_factor: 16,
            seed: 20160523, // the paper's publication era, for flavor
            num_files: 1,
        }
    }
}

/// Runs the sweep, calling `progress` after each completed point.
///
/// Validation is disabled during sweeps (the paper times the kernels, not
/// the checks); run the pipeline separately with validation for
/// correctness assurance.
pub fn run_sweep(
    cfg: &SweepConfig,
    work_root: &Path,
    mut progress: impl FnMut(&SweepPoint),
) -> ppbench_core::Result<Vec<SweepPoint>> {
    let mut points = Vec::new();
    for &scale in &cfg.scales {
        for &variant in &cfg.variants {
            let pipeline_cfg = PipelineConfig::builder()
                .scale(scale)
                .edge_factor(cfg.edge_factor)
                .seed(cfg.seed)
                .num_files(cfg.num_files)
                .variant(variant)
                .validation(ValidationLevel::None)
                .build();
            let dir = work_root.join(format!("s{scale}-{}", variant.name()));
            let result = Pipeline::new(pipeline_cfg, &dir).run()?;
            // Remove kernel files promptly: a full sweep writes each edge
            // list twice per variant.
            // ppbench: allow(discarded-result, reason = "best-effort scratch cleanup between points; the measurement is already taken")
            let _ = std::fs::remove_dir_all(&dir);
            let point = SweepPoint::from_result(variant, &result)?;
            progress(&point);
            points.push(point);
        }
    }
    Ok(points)
}

/// Convenience wrapper running in a scoped temp dir.
pub fn run_sweep_in_temp(
    cfg: &SweepConfig,
    progress: impl FnMut(&SweepPoint),
) -> ppbench_core::Result<Vec<SweepPoint>> {
    let td = TempDir::new("ppbench-sweep")
        .map_err(|e| ppbench_io::Error::io(std::env::temp_dir(), e))?;
    run_sweep(cfg, td.path(), progress)
}

/// Renders the sweep as CSV (one row per point, one rate column per
/// kernel).
pub fn to_csv(points: &[SweepPoint]) -> String {
    let mut out =
        String::from("variant,scale,edges,k0_eps,k1_eps,k2_eps,k3_eps,k0_s,k1_s,k2_s,k3_s\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.1},{:.1},{:.1},{:.1},{:.6},{:.6},{:.6},{:.6}\n",
            p.variant.name(),
            p.scale,
            p.edges,
            p.rates[0],
            p.rates[1],
            p.rates[2],
            p.rates[3],
            p.seconds[0],
            p.seconds[1],
            p.seconds[2],
            p.seconds[3],
        ));
    }
    out
}

/// Extracts one kernel's series per variant: `(label, [(edges, rate)…])`.
pub fn kernel_series(points: &[SweepPoint], kernel: usize) -> Vec<(String, Vec<(f64, f64)>)> {
    assert!(kernel < 4, "kernels are 0..=3");
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for p in points {
        let label = p.variant.name().to_string();
        let entry = match series.iter_mut().find(|(l, _)| *l == label) {
            Some(e) => e,
            None => {
                series.push((label, Vec::new()));
                // ppbench: allow(panic, reason = "an element was pushed on the previous line, so last_mut() is provably Some")
                series.last_mut().expect("just pushed")
            }
        };
        entry.1.push((p.edges as f64, p.rates[kernel]));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scales: vec![5, 6],
            variants: vec![Variant::Optimized, Variant::Naive],
            edge_factor: 4,
            seed: 1,
            num_files: 1,
        }
    }

    #[test]
    fn sweep_produces_all_points() {
        let td = TempDir::new("ppbench-sweep-test").unwrap();
        let mut seen = 0;
        let points = run_sweep(&tiny_cfg(), td.path(), |_| seen += 1).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(seen, 4);
        for p in &points {
            assert!(p.rates.iter().all(|&r| r > 0.0), "{p:?}");
            assert_eq!(p.edges, 4 << p.scale);
        }
        // Work dirs cleaned up.
        assert_eq!(std::fs::read_dir(td.path()).unwrap().count(), 0);
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let td = TempDir::new("ppbench-sweep-test").unwrap();
        let points = run_sweep(&tiny_cfg(), td.path(), |_| {}).unwrap();
        let csv = to_csv(&points);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("variant,scale"));
    }

    #[test]
    fn series_split_by_variant() {
        let td = TempDir::new("ppbench-sweep-test").unwrap();
        let points = run_sweep(&tiny_cfg(), td.path(), |_| {}).unwrap();
        let series = kernel_series(&points, 3);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1.len(), 2, "two scales per variant");
        // x values ascend with scale.
        assert!(series[0].1[0].0 < series[0].1[1].0);
    }
}
