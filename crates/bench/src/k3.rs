//! Kernel-3 microbench: SpMV variant × thread count × scale.
//!
//! The paper's compute-bound kernel is the one expected to "show a wider
//! dispersion in performance" once parallelized (§IV.D), so this module
//! measures exactly that axis: the historical scatter and gather forms,
//! the row-parallel gather (nnz-balanced ranges writing into one reused
//! output allocation), and the nnz-balanced fused kernels (wide and
//! narrow indices) the hot path now uses — each swept over explicit
//! thread counts, keeping the fastest of `trials` repetitions per point
//! so one scheduler hiccup cannot masquerade as a scaling regression.
//! Results land in `BENCH_k3.json` as
//! canonical JSON (sorted keys, shortest-roundtrip floats, rendered by
//! `ppbench_core::json`), giving later PRs a baseline to beat; the
//! `--check` mode re-validates that file's schema so CI catches drift in
//! either direction.
//!
//! Thread counts are always explicit — this crate holds to the
//! env-dependence rule, so nothing here consults the machine; pass the
//! counts you want to measure.

use ppbench_core::json::{JsonArray, JsonObject};
use ppbench_core::kernel3::{self, DanglingInfo, DanglingStrategy, PageRankOptions, PageRankRun};
use ppbench_core::Stopwatch;
use ppbench_gen::{EdgeGenerator, GraphSpec, Kronecker};
use ppbench_sort::SortKey;
use ppbench_sparse::{ops, spmv, vector, Csr, Csr32};

/// Version tag written into the JSON so schema changes are explicit.
pub const SCHEMA_VERSION: &str = "ppbench-k3-v2";

/// Top-level keys of the benchmark file, sorted (canonical order).
pub const TOP_KEYS: &[&str] = &[
    "benchmark",
    "damping",
    "edge_factor",
    "iterations",
    "results",
    "seed",
    "trials",
];

/// Keys of each result row, sorted (canonical order).
pub const ROW_KEYS: &[&str] = &[
    "gflops",
    "l1_vs_serial",
    "nnz",
    "scale",
    "seconds",
    "threads",
    "variant",
    "vertices",
];

/// The kernel-3 implementations under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum K3Variant {
    /// Serial CSR scatter (`vxm_into`) — the reference implementation.
    Scatter,
    /// Serial gather over the precomputed transpose.
    Gather,
    /// Row-parallel gather over the transpose: nnz-balanced row ranges
    /// gathered into a single output allocation per call.
    ParGather,
    /// nnz-balanced fused kernel over wide (`u64`) column indices.
    BalancedFusedU64,
    /// nnz-balanced fused kernel over narrow (`u32`) column indices.
    BalancedFusedU32,
}

impl K3Variant {
    /// Every variant, measurement order.
    pub const ALL: [K3Variant; 5] = [
        K3Variant::Scatter,
        K3Variant::Gather,
        K3Variant::ParGather,
        K3Variant::BalancedFusedU64,
        K3Variant::BalancedFusedU32,
    ];

    /// Stable name used in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            K3Variant::Scatter => "scatter",
            K3Variant::Gather => "gather",
            K3Variant::ParGather => "par_gather",
            K3Variant::BalancedFusedU64 => "balanced_fused_u64",
            K3Variant::BalancedFusedU32 => "balanced_fused_u32",
        }
    }

    /// Whether the variant uses the thread pool (serial variants are
    /// measured once, at `threads = 1`).
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            K3Variant::ParGather | K3Variant::BalancedFusedU64 | K3Variant::BalancedFusedU32
        )
    }
}

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Graph scales (vertices = 2^scale).
    pub scales: Vec<u32>,
    /// Thread counts for the parallel variants.
    pub threads: Vec<usize>,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Master seed for generation and rank init.
    pub seed: u64,
    /// PageRank iterations per measurement.
    pub iterations: u32,
    /// Damping factor.
    pub damping: f64,
    /// Measurement repetitions per point; the fastest trial is kept
    /// (best-of-N damps scheduler and page-cache noise).
    pub trials: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scales: vec![12],
            threads: vec![1, 2, 4, 8],
            edge_factor: 16,
            seed: 1,
            iterations: ppbench_core::ITERATIONS,
            damping: ppbench_core::DAMPING,
            trials: 1,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Variant name (see [`K3Variant::name`]).
    pub variant: &'static str,
    /// Graph scale.
    pub scale: u32,
    /// Thread count the pool was sized to (1 for serial variants).
    pub threads: usize,
    /// Vertex count.
    pub vertices: u64,
    /// Stored nonzeros after filtering/normalization.
    pub nnz: u64,
    /// Wall-clock seconds for the whole kernel-3 run.
    pub seconds: f64,
    /// `2 · nnz · iterations / seconds / 1e9` — the paper's FLOP model.
    pub gflops: f64,
    /// L1 distance of this variant's ranks from the serial scatter ranks.
    pub l1_vs_serial: f64,
}

/// Builds the normalized scale-`s` matrix the same way the pipeline does:
/// Kronecker edges, radix sort by start vertex, sorted-input CSR
/// construction, row normalization.
pub fn build_matrix(scale: u32, edge_factor: u64, seed: u64) -> Csr<f64> {
    let spec = GraphSpec::new(scale, edge_factor);
    let mut edges = Kronecker::new(spec, seed).edges();
    ppbench_sort::radix_sort(&mut edges, SortKey::Start);
    let tuples: Vec<(u64, u64)> = edges.iter().map(|e| (e.u, e.v)).collect();
    let counts = Csr::<u64>::from_sorted_edges(spec.num_vertices(), &tuples);
    ops::normalize_rows(&counts)
}

/// Sizes the global thread pool, surfacing the error as a string (the
/// shim never fails; real rayon could).
pub(crate) fn size_pool(threads: usize) -> Result<(), String> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .map_err(|e| format!("failed to size thread pool to {threads}: {e}"))
}

/// Everything shared by every variant measured at one scale.
struct ScaleFixture {
    a: Csr<f64>,
    at: Csr<f64>,
    narrow: Option<Csr32>,
    dangling: DanglingInfo,
    opts: PageRankOptions,
    seed: u64,
}

/// Runs one variant once and returns the result plus wall seconds.
fn run_variant(
    fx: &ScaleFixture,
    variant: K3Variant,
    threads: usize,
) -> Option<(PageRankRun, f64)> {
    let r0 = kernel3::init_ranks(fx.a.rows(), fx.seed);
    let boundaries = spmv::balanced_boundaries(fx.at.row_ptr(), threads);
    let sw = Stopwatch::start();
    let run = match variant {
        K3Variant::Scatter => kernel3::run_into(
            r0,
            |r, next, coeffs| {
                spmv::vxm_into(r, &fx.a, next);
                kernel3::apply_epilogue(r, next, coeffs)
            },
            &fx.dangling,
            &fx.opts,
        ),
        K3Variant::Gather => kernel3::run_into(
            r0,
            kernel3::serial_stepper(|x: &[f64]| spmv::vxm_gather(x, &fx.at)),
            &fx.dangling,
            &fx.opts,
        ),
        K3Variant::ParGather => kernel3::run_into(
            r0,
            kernel3::serial_stepper(|x: &[f64]| spmv::par_vxm_gather(x, &fx.at)),
            &fx.dangling,
            &fx.opts,
        ),
        K3Variant::BalancedFusedU64 => kernel3::run_into(
            r0,
            |r, next, coeffs| spmv::step_fused(r, &fx.at.view(), next, coeffs, &boundaries),
            &fx.dangling,
            &fx.opts,
        ),
        K3Variant::BalancedFusedU32 => {
            let narrow = fx.narrow.as_ref()?;
            kernel3::run_into(
                r0,
                |r, next, coeffs| spmv::step_fused(r, &narrow.view(), next, coeffs, &boundaries),
                &fx.dangling,
                &fx.opts,
            )
        }
    };
    Some((run, sw.elapsed_secs()))
}

/// Runs the full sweep. For each scale the serial variants run once at
/// one thread; the parallel variants run once per requested thread count
/// (the global pool is resized between points). Each point is measured
/// [`SweepConfig::trials`] times and the fastest repetition is kept. Row
/// order is deterministic: scale-major, then [`K3Variant::ALL`] order,
/// then thread order as given.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    let mut rows = Vec::new();
    for &scale in &cfg.scales {
        let a = build_matrix(scale, cfg.edge_factor, cfg.seed);
        let at = a.transpose();
        let narrow = Csr32::try_from_wide(&at);
        let dangling = DanglingInfo::from_mask(&ops::empty_rows(&a));
        let fx = ScaleFixture {
            at,
            narrow,
            dangling,
            opts: PageRankOptions {
                damping: cfg.damping,
                max_iterations: cfg.iterations,
                dangling: DanglingStrategy::Omit,
                tolerance: None,
            },
            seed: cfg.seed,
            a,
        };
        let flops = 2.0 * fx.a.nnz() as f64 * f64::from(cfg.iterations);
        // Serial scatter is both a measurement and the accuracy reference.
        size_pool(1)?;
        let Some((reference, _)) = run_variant(&fx, K3Variant::Scatter, 1) else {
            return Err("scatter reference did not run".to_string());
        };
        for variant in K3Variant::ALL {
            let thread_counts: &[usize] = if variant.is_parallel() {
                &cfg.threads
            } else {
                &[1]
            };
            for &threads in thread_counts {
                size_pool(threads)?;
                let mut best: Option<(PageRankRun, f64)> = None;
                for _trial in 0..cfg.trials.max(1) {
                    let Some(measured) = run_variant(&fx, variant, threads) else {
                        // u32 variant on a >2^32-column matrix: nothing
                        // to measure.
                        break;
                    };
                    if best.as_ref().is_none_or(|(_, b)| measured.1 < *b) {
                        best = Some(measured);
                    }
                }
                let Some((run, seconds)) = best else {
                    continue;
                };
                rows.push(SweepRow {
                    variant: variant.name(),
                    scale,
                    threads,
                    vertices: fx.a.rows(),
                    nnz: fx.a.nnz() as u64,
                    seconds,
                    gflops: flops / seconds.max(1e-15) / 1e9,
                    l1_vs_serial: vector::l1_distance(&run.ranks, &reference.ranks),
                });
            }
        }
        // Leave the pool unpinned for whatever runs next in this process.
        size_pool(0)?;
    }
    Ok(rows)
}

/// Renders the sweep as the canonical `BENCH_k3.json` document.
pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_str("variant", row.variant)
            .set_u64("scale", u64::from(row.scale))
            .set_u64("threads", row.threads as u64)
            .set_u64("vertices", row.vertices)
            .set_u64("nnz", row.nnz)
            .set_f64("seconds", row.seconds)
            .set_f64("gflops", row.gflops)
            .set_f64("l1_vs_serial", row.l1_vs_serial);
        results.push_obj(&entry);
    }
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", SCHEMA_VERSION)
        .set_f64("damping", cfg.damping)
        .set_u64("edge_factor", cfg.edge_factor)
        .set_u64("iterations", u64::from(cfg.iterations))
        .set_raw("results", results.render())
        .set_u64("seed", cfg.seed)
        .set_u64("trials", cfg.trials as u64);
    obj.render()
}

/// Validates a `BENCH_k3.json` document against the expected schema:
/// correct version tag, exactly [`TOP_KEYS`] at the top level, at least
/// one result row, and exactly [`ROW_KEYS`] on every row. Fails on drift
/// in either direction (missing *or* extra keys).
pub fn check_schema(text: &str) -> Result<(), String> {
    crate::schema::check_flat_schema(text, SCHEMA_VERSION, TOP_KEYS, ROW_KEYS)
}

/// Parses a comma-separated thread list (`"1,2,4,8"`), requiring every
/// entry to be a positive integer.
pub fn parse_thread_list(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let n: usize = part.trim().parse().ok()?;
        if n == 0 {
            return None;
        }
        out.push(n);
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scales: vec![6],
            threads: vec![1, 2],
            edge_factor: 8,
            seed: 7,
            iterations: 5,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_covers_every_variant_and_agrees_with_serial() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        // 2 serial rows + 3 parallel variants × 2 thread counts.
        assert_eq!(rows.len(), 2 + 3 * 2);
        for v in K3Variant::ALL {
            assert!(
                rows.iter().any(|r| r.variant == v.name()),
                "missing {}",
                v.name()
            );
        }
        for row in &rows {
            assert!(row.gflops > 0.0, "{row:?}");
            assert!(
                row.l1_vs_serial < 1e-12,
                "{} diverged from serial: {}",
                row.variant,
                row.l1_vs_serial
            );
        }
    }

    #[test]
    fn json_roundtrip_passes_schema_check() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        check_schema(&json).unwrap();
    }

    #[test]
    fn best_of_n_trials_still_yields_one_row_per_point() {
        let cfg = SweepConfig {
            trials: 3,
            ..tiny_cfg()
        };
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), 2 + 3 * 2);
        for row in &rows {
            assert!(row.l1_vs_serial < 1e-12, "{row:?}");
        }
    }

    #[test]
    fn schema_check_rejects_drift_in_both_directions() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        // Missing row key.
        let missing = json.replacen("\"gflops\":", "\"gfl0ps\":", 1);
        assert!(check_schema(&missing).is_err());
        // Extra top-level key.
        let extra = json.replacen("{\"benchmark\"", "{\"bonus\":1,\"benchmark\"", 1);
        assert!(check_schema(&extra).is_err());
        // Wrong version tag.
        let wrong = json.replace(SCHEMA_VERSION, "ppbench-k3-v9");
        assert!(check_schema(&wrong).is_err());
        // Empty results.
        assert!(check_schema(&to_json(&cfg, &[])).is_err());
    }

    #[test]
    fn thread_list_parses() {
        assert_eq!(parse_thread_list("1,2,4,8"), Some(vec![1, 2, 4, 8]));
        assert_eq!(parse_thread_list("4"), Some(vec![4]));
        assert_eq!(parse_thread_list("0"), None);
        assert_eq!(parse_thread_list(""), None);
        assert_eq!(parse_thread_list("two"), None);
    }
}
