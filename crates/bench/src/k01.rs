//! K0→K1 front-end microbench: write/sort variant × thread count × scale.
//!
//! The paper's I/O-bound kernels are the front of the pipeline: kernel 0
//! writes the generated edge list "to files on non-volatile storage as
//! pairs of tab separated numeric strings", and kernel 1 reads it back,
//! sorts by start vertex, and writes it again. This module measures the
//! three kernel-0 write strategies (full materialization, serial
//! streaming, sharded parallel streaming) and the three kernel-1 sort
//! paths (in-memory, plain external merge, pipelined external merge),
//! each swept over explicit thread counts and scales. Results land in
//! `BENCH_k01.json` as canonical JSON (sorted keys, shortest-roundtrip
//! floats, rendered by `ppbench_core::json`), giving later PRs a baseline
//! to beat; the `--check` mode re-validates that file's schema so CI
//! catches drift in either direction.
//!
//! Generation is interleaved with writing on the streaming paths, so every
//! kernel-0 measurement times generate+write as one unit — the same work
//! for every variant, which keeps the comparison fair even though the
//! paper's Figure 4 nominally times only the write.
//!
//! Every variant's output is digest-verified against the first-measured
//! variant of its kernel before the row is accepted: a fast wrong answer
//! is a failed sweep, not a benchmark result.

use std::path::Path;

use ppbench_core::json::{JsonArray, JsonObject};
use ppbench_core::{kernel0, kernel1, PipelineConfig, Stopwatch};
use ppbench_io::tempdir::TempDir;
use ppbench_io::{EdgeReader, EdgeWriter, Manifest, SortState, BYTES_PER_EDGE};
use ppbench_sort::{Algorithm, ExternalSorter, SortKey};

/// Version tag written into the JSON so schema changes are explicit.
pub const SCHEMA_VERSION: &str = "ppbench-k01-v2";

/// Top-level keys of the benchmark file, sorted (canonical order).
pub const TOP_KEYS: &[&str] = &[
    "benchmark",
    "budget_divisor",
    "edge_factor",
    "num_files",
    "results",
    "seed",
    "trials",
];

/// Keys of each result row, sorted (canonical order).
pub const ROW_KEYS: &[&str] = &[
    "edges", "kernel", "mb_per_s", "mbytes", "scale", "seconds", "threads", "variant",
];

/// The kernel-0 write strategies under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum K0Variant {
    /// The historical path: generate the whole edge vector in parallel,
    /// then hand it to the writer — peak resident memory is the full list.
    Materialize,
    /// Serial chunked streaming through one writer ([`kernel0::write_streamed`]).
    Stream,
    /// One parallel writer per output file, each streaming its contiguous
    /// slice of the stream ([`kernel0::write_sharded`]).
    Sharded,
}

impl K0Variant {
    /// Every variant, measurement order (the first is the reference).
    pub const ALL: [K0Variant; 3] = [
        K0Variant::Materialize,
        K0Variant::Stream,
        K0Variant::Sharded,
    ];

    /// Stable name used in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            K0Variant::Materialize => "materialize",
            K0Variant::Stream => "stream",
            K0Variant::Sharded => "sharded",
        }
    }

    /// Whether the variant uses the thread pool (serial variants are
    /// measured once, at `threads = 1`).
    pub fn is_parallel(self) -> bool {
        matches!(self, K0Variant::Materialize | K0Variant::Sharded)
    }
}

/// The kernel-1 sort paths under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum K1Variant {
    /// Whole list in RAM, stable LSD radix sort (budget `None`).
    InMem,
    /// Plain external merge sort: read runs, sort, merge — the merge only
    /// starts after the last run is written.
    External,
    /// The pipelined external sort kernel 1 now spills through: parsing,
    /// run sorting, and output writing overlap on separate threads.
    Pipelined,
}

impl K1Variant {
    /// Every variant, measurement order (the first is the reference).
    pub const ALL: [K1Variant; 3] = [K1Variant::InMem, K1Variant::External, K1Variant::Pipelined];

    /// Stable name used in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            K1Variant::InMem => "inmem",
            K1Variant::External => "external",
            K1Variant::Pipelined => "pipelined",
        }
    }

    /// Whether the variant uses the thread pool (the external sorters
    /// parallelize run sorting; the in-memory radix sort is serial).
    pub fn is_parallel(self) -> bool {
        matches!(self, K1Variant::External | K1Variant::Pipelined)
    }
}

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Graph scales (vertices = 2^scale).
    pub scales: Vec<u32>,
    /// Thread counts for the parallel variants.
    pub threads: Vec<usize>,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Master seed for generation.
    pub seed: u64,
    /// Output files per edge file set.
    pub num_files: usize,
    /// The spill variants run with a memory budget of
    /// `input_bytes / budget_divisor`, so the external paths always spill
    /// (into roughly `budget_divisor` runs) regardless of scale.
    pub budget_divisor: u64,
    /// Measurement repetitions per point; the fastest trial is kept
    /// (best-of-N damps scheduler and page-cache noise, which dominates
    /// the I/O-bound kernels at small scales).
    pub trials: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scales: vec![12],
            threads: vec![1, 2, 4],
            edge_factor: 16,
            seed: 1,
            num_files: 4,
            budget_divisor: 4,
            trials: 1,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// `"k0"` or `"k1"`.
    pub kernel: &'static str,
    /// Variant name (see [`K0Variant::name`] / [`K1Variant::name`]).
    pub variant: &'static str,
    /// Graph scale.
    pub scale: u32,
    /// Thread count the pool was sized to (1 for serial variants).
    pub threads: usize,
    /// Edges in the file set.
    pub edges: u64,
    /// On-disk megabytes of the file set written (decimal MB).
    pub mbytes: f64,
    /// Wall-clock seconds for the whole kernel.
    pub seconds: f64,
    /// `mbytes / seconds` — the paper's Figure-4 axis.
    pub mb_per_s: f64,
}

/// Sizes the global thread pool, surfacing the error as a string (the
/// shim never fails; real rayon could).
fn size_pool(threads: usize) -> Result<(), String> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .map_err(|e| format!("failed to size thread pool to {threads}: {e}"))
}

/// Sums the on-disk bytes of a manifest's files.
fn dir_bytes(dir: &Path, manifest: &Manifest) -> Result<u64, String> {
    let mut total = 0u64;
    for f in &manifest.files {
        let path = dir.join(&f.name);
        let meta =
            std::fs::metadata(&path).map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
        total += meta.len();
    }
    Ok(total)
}

/// Runs one kernel-0 variant into `dir` and returns its manifest.
fn run_k0(cfg: &PipelineConfig, variant: K0Variant, dir: &Path) -> Result<Manifest, String> {
    let err = |e: ppbench_core::Error| format!("k0 {}: {e}", variant.name());
    let generator = kernel0::build_generator(cfg);
    match variant {
        K0Variant::Materialize => {
            let m = cfg.spec.num_edges();
            let edges = generator.edges_parallel(kernel0::GENERATION_CHUNK);
            let io_err = |e: ppbench_io::Error| format!("k0 materialize: {e}");
            let mut writer = EdgeWriter::create(dir, "edges", cfg.num_files, m).map_err(io_err)?;
            writer.write_all(&edges).map_err(io_err)?;
            writer
                .finish(
                    Some(cfg.spec.scale()),
                    Some(cfg.spec.num_vertices()),
                    SortState::Unsorted,
                )
                .map_err(io_err)
        }
        K0Variant::Stream => kernel0::write_streamed(&generator, cfg, dir).map_err(err),
        K0Variant::Sharded => kernel0::write_sharded(&generator, cfg, dir).map_err(err),
    }
}

/// Runs one kernel-1 variant from `in_dir` into `out_dir` and returns the
/// output manifest. `budget_bytes` applies to the spill variants only.
fn run_k1(
    in_dir: &Path,
    out_dir: &Path,
    num_files: usize,
    variant: K1Variant,
    budget_bytes: u64,
) -> Result<Manifest, String> {
    let err = |e: ppbench_core::Error| format!("k1 {}: {e}", variant.name());
    let io_err = |e: ppbench_io::Error| format!("k1 external: {e}");
    match variant {
        K1Variant::InMem => kernel1::sort_file_set(
            in_dir,
            out_dir,
            num_files,
            SortKey::Start,
            Algorithm::Radix,
            None,
        )
        .map_err(err),
        K1Variant::Pipelined => kernel1::sort_file_set(
            in_dir,
            out_dir,
            num_files,
            SortKey::Start,
            Algorithm::Radix,
            Some(budget_bytes),
        )
        .map_err(err),
        K1Variant::External => {
            // The pre-pipeline spill path, preserved as the baseline: one
            // thread reads, sorts runs, merges, and writes, strictly in
            // sequence.
            let (in_manifest, iter) = EdgeReader::open_dir(in_dir).map_err(io_err)?;
            let budget_edges = usize::try_from(budget_bytes / BYTES_PER_EDGE as u64)
                .unwrap_or(usize::MAX)
                .max(1);
            let mut writer = EdgeWriter::create(out_dir, "edges", num_files, in_manifest.edges)
                .map_err(io_err)?;
            let scratch = out_dir.join("sort-scratch");
            let sorter =
                ExternalSorter::new(&scratch, budget_edges, SortKey::Start).map_err(io_err)?;
            let _stats = sorter.sort(iter, |e| writer.write(e)).map_err(io_err)?;
            // ppbench: allow(discarded-result, reason = "best-effort scratch cleanup; the sorted output is already written and a leftover dir is harmless")
            let _ = std::fs::remove_dir_all(&scratch);
            writer
                .finish(
                    in_manifest.scale,
                    in_manifest.vertex_bound,
                    SortKey::Start.sort_state(),
                )
                .map_err(io_err)
        }
    }
}

/// Runs the full sweep. For each scale the serial variants run once at one
/// thread; the parallel variants run once per requested thread count (the
/// global pool is resized between points). Each point is measured
/// [`SweepConfig::trials`] times and the fastest repetition is kept, with
/// every repetition digest-checked against its first. Row order is
/// deterministic:
/// scale-major, kernel 0 before kernel 1, then `ALL` order, then thread
/// order as given. Every measurement's output digest is checked against
/// the kernel's first-measured variant; a mismatch fails the sweep.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    let td = TempDir::new("k01bench").map_err(|e| format!("cannot create scratch dir: {e}"))?;
    let mut rows = Vec::new();
    for &scale in &cfg.scales {
        let pcfg = PipelineConfig::builder()
            .scale(scale)
            .edge_factor(cfg.edge_factor)
            .seed(cfg.seed)
            .num_files(cfg.num_files)
            .build();

        // --- Kernel 0: generate + write ---
        // The first variant measured doubles as the byte-level reference
        // and, after verification, as kernel 1's input.
        let mut k0_ref: Option<(Manifest, std::path::PathBuf)> = None;
        for variant in K0Variant::ALL {
            let thread_counts: &[usize] = if variant.is_parallel() {
                &cfg.threads
            } else {
                &[1]
            };
            for &threads in thread_counts {
                size_pool(threads)?;
                // Best-of-N: the first trial's output is kept (for the
                // digest reference and as kernel 1's input); every later
                // trial must reproduce its byte stream and is deleted.
                let mut kept: Option<(Manifest, std::path::PathBuf)> = None;
                let mut seconds = f64::INFINITY;
                for trial in 0..cfg.trials.max(1) {
                    let dir = td.join(&format!(
                        "s{scale}-k0-{}-t{threads}-r{trial}",
                        variant.name()
                    ));
                    let sw = Stopwatch::start();
                    let manifest = run_k0(&pcfg, variant, &dir)?;
                    seconds = seconds.min(sw.elapsed_secs());
                    match &kept {
                        None => kept = Some((manifest, dir)),
                        Some((first, _)) => {
                            if !manifest.digest.same_stream(&first.digest) {
                                return Err(format!(
                                    "k0 {} trial {trial} (t{threads}, scale {scale}) wrote \
                                     a different edge stream than its first trial",
                                    variant.name()
                                ));
                            }
                            std::fs::remove_dir_all(&dir)
                                .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
                        }
                    }
                }
                let Some((manifest, dir)) = kept else {
                    return Err(format!("k0 {} measured no trials", variant.name()));
                };
                let bytes = dir_bytes(&dir, &manifest)?;
                let mbytes = bytes as f64 / 1e6;
                rows.push(SweepRow {
                    kernel: "k0",
                    variant: variant.name(),
                    scale,
                    threads,
                    edges: manifest.edges,
                    mbytes,
                    seconds,
                    mb_per_s: mbytes / seconds.max(1e-15),
                });
                match &k0_ref {
                    None => k0_ref = Some((manifest, dir)),
                    Some((reference, _)) => {
                        if !manifest.digest.same_stream(&reference.digest) {
                            return Err(format!(
                                "k0 {} (t{threads}, scale {scale}) wrote a different \
                                 edge stream than the reference",
                                variant.name()
                            ));
                        }
                        std::fs::remove_dir_all(&dir)
                            .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
                    }
                }
            }
        }
        let Some((k0_manifest, k0_dir)) = k0_ref else {
            return Err("kernel 0 measured no variants".to_string());
        };

        // --- Kernel 1: read + sort + write ---
        let in_bytes = k0_manifest.edges.saturating_mul(BYTES_PER_EDGE as u64);
        let budget_bytes = (in_bytes / cfg.budget_divisor.max(1)).max(BYTES_PER_EDGE as u64);
        let mut k1_ref: Option<Manifest> = None;
        for variant in K1Variant::ALL {
            let thread_counts: &[usize] = if variant.is_parallel() {
                &cfg.threads
            } else {
                &[1]
            };
            for &threads in thread_counts {
                size_pool(threads)?;
                // Best-of-N mirrors kernel 0: keep the first trial's
                // output, require every repetition to reproduce it.
                let mut kept: Option<(Manifest, std::path::PathBuf)> = None;
                let mut seconds = f64::INFINITY;
                for trial in 0..cfg.trials.max(1) {
                    let dir = td.join(&format!(
                        "s{scale}-k1-{}-t{threads}-r{trial}",
                        variant.name()
                    ));
                    let sw = Stopwatch::start();
                    let manifest = run_k1(&k0_dir, &dir, cfg.num_files, variant, budget_bytes)?;
                    seconds = seconds.min(sw.elapsed_secs());
                    match &kept {
                        None => kept = Some((manifest, dir)),
                        Some((first, _)) => {
                            if !manifest.digest.same_stream(&first.digest) {
                                return Err(format!(
                                    "k1 {} trial {trial} (t{threads}, scale {scale}) produced \
                                     a different sorted stream than its first trial",
                                    variant.name()
                                ));
                            }
                            std::fs::remove_dir_all(&dir)
                                .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
                        }
                    }
                }
                let Some((manifest, dir)) = kept else {
                    return Err(format!("k1 {} measured no trials", variant.name()));
                };
                let bytes = dir_bytes(&dir, &manifest)?;
                let mbytes = bytes as f64 / 1e6;
                if !manifest.sort_state.is_sorted_by_start() {
                    return Err(format!("k1 {} output is not sorted", variant.name()));
                }
                // All three paths are stable sorts, so their output
                // streams must be byte-identical.
                match &k1_ref {
                    None => k1_ref = Some(manifest.clone()),
                    Some(reference) => {
                        if !manifest.digest.same_stream(&reference.digest) {
                            return Err(format!(
                                "k1 {} (t{threads}, scale {scale}) produced a different \
                                 sorted stream than the reference",
                                variant.name()
                            ));
                        }
                    }
                }
                rows.push(SweepRow {
                    kernel: "k1",
                    variant: variant.name(),
                    scale,
                    threads,
                    edges: manifest.edges,
                    mbytes,
                    seconds,
                    mb_per_s: mbytes / seconds.max(1e-15),
                });
                std::fs::remove_dir_all(&dir)
                    .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
            }
        }
        std::fs::remove_dir_all(&k0_dir)
            .map_err(|e| format!("cannot clean {}: {e}", k0_dir.display()))?;
        // Leave the pool unpinned for whatever runs next in this process.
        size_pool(0)?;
    }
    Ok(rows)
}

/// Renders the sweep as the canonical `BENCH_k01.json` document.
pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_str("kernel", row.kernel)
            .set_str("variant", row.variant)
            .set_u64("scale", u64::from(row.scale))
            .set_u64("threads", row.threads as u64)
            .set_u64("edges", row.edges)
            .set_f64("mbytes", row.mbytes)
            .set_f64("seconds", row.seconds)
            .set_f64("mb_per_s", row.mb_per_s);
        results.push_obj(&entry);
    }
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", SCHEMA_VERSION)
        .set_u64("budget_divisor", cfg.budget_divisor)
        .set_u64("edge_factor", cfg.edge_factor)
        .set_u64("num_files", cfg.num_files as u64)
        .set_raw("results", results.render())
        .set_u64("seed", cfg.seed)
        .set_u64("trials", cfg.trials as u64);
    obj.render()
}

/// Validates a `BENCH_k01.json` document against the expected schema:
/// correct version tag, exactly [`TOP_KEYS`] at the top level, at least
/// one result row, and exactly [`ROW_KEYS`] on every row. Fails on drift
/// in either direction (missing *or* extra keys).
pub fn check_schema(text: &str) -> Result<(), String> {
    crate::schema::check_flat_schema(text, SCHEMA_VERSION, TOP_KEYS, ROW_KEYS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scales: vec![6],
            threads: vec![1, 2],
            edge_factor: 8,
            seed: 7,
            num_files: 2,
            budget_divisor: 4,
            trials: 1,
        }
    }

    #[test]
    fn best_of_n_trials_still_yields_one_row_per_point() {
        let cfg = SweepConfig {
            trials: 2,
            ..tiny_cfg()
        };
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), (1 + 2 * 2) * 2);
    }

    #[test]
    fn sweep_covers_every_variant_and_streams_agree() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        // K0: stream once + 2 parallel variants × 2 thread counts;
        // K1: inmem once + 2 parallel variants × 2 thread counts.
        assert_eq!(rows.len(), (1 + 2 * 2) * 2);
        for v in K0Variant::ALL {
            assert!(
                rows.iter()
                    .any(|r| r.kernel == "k0" && r.variant == v.name()),
                "missing k0 {}",
                v.name()
            );
        }
        for v in K1Variant::ALL {
            assert!(
                rows.iter()
                    .any(|r| r.kernel == "k1" && r.variant == v.name()),
                "missing k1 {}",
                v.name()
            );
        }
        for row in &rows {
            assert!(row.mb_per_s > 0.0, "{row:?}");
            assert!(row.edges > 0, "{row:?}");
            assert!(row.mbytes > 0.0, "{row:?}");
        }
    }

    #[test]
    fn json_roundtrip_passes_schema_check() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        check_schema(&json).unwrap();
    }

    #[test]
    fn schema_check_rejects_drift_in_both_directions() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        // Missing row key.
        let missing = json.replacen("\"mb_per_s\":", "\"mbps\":", 1);
        assert!(check_schema(&missing).is_err());
        // Extra top-level key.
        let extra = json.replacen("{\"benchmark\"", "{\"bonus\":1,\"benchmark\"", 1);
        assert!(check_schema(&extra).is_err());
        // Wrong version tag.
        let wrong = json.replace(SCHEMA_VERSION, "ppbench-k01-v9");
        assert!(check_schema(&wrong).is_err());
        // Empty results.
        assert!(check_schema(&to_json(&cfg, &[])).is_err());
    }
}
