//! K0→K1 front-end microbench: gen × write/sort variant × threads × scale.
//!
//! The paper's I/O-bound kernels are the front of the pipeline: kernel 0
//! writes the generated edge list "to files on non-volatile storage as
//! pairs of tab separated numeric strings", and kernel 1 reads it back,
//! sorts by start vertex, and writes it again. This module measures the
//! three kernel-0 write strategies (full materialization, serial
//! streaming, sharded parallel streaming) under each requested R-MAT
//! sampler (`faithful` per-level recursion vs the `linear` block-table
//! sampler) and the three kernel-1 sort paths (in-memory, plain external
//! merge, pipelined external merge), each swept over explicit thread
//! counts and scales. Results land in `BENCH_k01.json` as canonical JSON
//! (sorted keys, shortest-roundtrip floats, rendered by
//! `ppbench_core::json`), giving later PRs a baseline to beat; the
//! `--check` mode re-validates that file's schema — including a >1%
//! rate-vs-raw-measurement consistency gate — so CI catches drift in
//! either direction.
//!
//! Generation is interleaved with writing on the streaming paths, so every
//! kernel-0 measurement times generate+write as one unit — the same work
//! for every variant, which keeps the comparison fair even though the
//! paper's Figure 4 nominally times only the write.
//!
//! Every variant's output is digest-verified against the first-measured
//! variant of its kernel before the row is accepted: a fast wrong answer
//! is a failed sweep, not a benchmark result.

use std::path::Path;

use ppbench_core::json::{JsonArray, JsonObject};
use ppbench_core::{kernel0, kernel1, PipelineConfig, Stopwatch};
use ppbench_gen::RmatSampler;
use ppbench_io::tempdir::TempDir;
use ppbench_io::{EdgeReader, EdgeWriter, Manifest, SortState, BYTES_PER_EDGE};
use ppbench_sort::{Algorithm, ExternalSorter, SortKey};

/// Version tag written into the JSON so schema changes are explicit.
/// v3 added the `gen` axis (R-MAT sampler per kernel-0 row), the
/// `gb_per_s` rate column, and the `faithful_max_scale`/`k1_max_scale`
/// sweep caps.
pub const SCHEMA_VERSION: &str = "ppbench-k01-v3";

/// Top-level keys of the benchmark file, sorted (canonical order).
pub const TOP_KEYS: &[&str] = &[
    "benchmark",
    "budget_divisor",
    "edge_factor",
    "faithful_max_scale",
    "gens",
    "k1_max_scale",
    "num_files",
    "results",
    "seed",
    "trials",
];

/// Keys of each result row, sorted (canonical order).
pub const ROW_KEYS: &[&str] = &[
    "edges", "gb_per_s", "gen", "kernel", "mb_per_s", "mbytes", "scale", "seconds", "threads",
    "variant",
];

/// The kernel-0 write strategies under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum K0Variant {
    /// The historical path: generate the whole edge vector in parallel,
    /// then hand it to the writer — peak resident memory is the full list.
    Materialize,
    /// Serial chunked streaming through one writer ([`kernel0::write_streamed`]).
    Stream,
    /// One parallel writer per output file, each streaming its contiguous
    /// slice of the stream ([`kernel0::write_sharded`]).
    Sharded,
}

impl K0Variant {
    /// Every variant, measurement order (the first is the reference).
    pub const ALL: [K0Variant; 3] = [
        K0Variant::Materialize,
        K0Variant::Stream,
        K0Variant::Sharded,
    ];

    /// Stable name used in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            K0Variant::Materialize => "materialize",
            K0Variant::Stream => "stream",
            K0Variant::Sharded => "sharded",
        }
    }

    /// Whether the variant uses the thread pool (serial variants are
    /// measured once, at `threads = 1`).
    pub fn is_parallel(self) -> bool {
        matches!(self, K0Variant::Materialize | K0Variant::Sharded)
    }
}

/// The kernel-1 sort paths under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum K1Variant {
    /// Whole list in RAM, stable LSD radix sort (budget `None`).
    InMem,
    /// Plain external merge sort: read runs, sort, merge — the merge only
    /// starts after the last run is written.
    External,
    /// The pipelined external sort kernel 1 now spills through: parsing,
    /// run sorting, and output writing overlap on separate threads.
    Pipelined,
}

impl K1Variant {
    /// Every variant, measurement order (the first is the reference).
    pub const ALL: [K1Variant; 3] = [K1Variant::InMem, K1Variant::External, K1Variant::Pipelined];

    /// Stable name used in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            K1Variant::InMem => "inmem",
            K1Variant::External => "external",
            K1Variant::Pipelined => "pipelined",
        }
    }

    /// Whether the variant uses the thread pool (the external sorters
    /// parallelize run sorting; the in-memory radix sort is serial).
    pub fn is_parallel(self) -> bool {
        matches!(self, K1Variant::External | K1Variant::Pipelined)
    }
}

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Graph scales (vertices = 2^scale).
    pub scales: Vec<u32>,
    /// Thread counts for the parallel variants.
    pub threads: Vec<usize>,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Master seed for generation.
    pub seed: u64,
    /// Output files per edge file set.
    pub num_files: usize,
    /// The spill variants run with a memory budget of
    /// `input_bytes / budget_divisor`, so the external paths always spill
    /// (into roughly `budget_divisor` runs) regardless of scale.
    pub budget_divisor: u64,
    /// Measurement repetitions per point; the fastest trial is kept
    /// (best-of-N damps scheduler and page-cache noise, which dominates
    /// the I/O-bound kernels at small scales).
    pub trials: usize,
    /// R-MAT samplers to sweep on kernel 0 (the `gen` axis). Kernel 1
    /// runs once per scale, from the first swept sampler's output.
    pub gens: Vec<RmatSampler>,
    /// Skip the faithful sampler above this scale. Its per-edge recursion
    /// is `scale`-fold slower than the linear block-table sampler, so the
    /// largest scales sweep linear-only instead of dropping the scale.
    pub faithful_max_scale: Option<u32>,
    /// Skip kernel 1 above this scale (the sort paths are measured at the
    /// comparison scale; the top-end rows are a kernel-0 stress point).
    pub k1_max_scale: Option<u32>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scales: vec![12],
            threads: vec![1, 2, 4],
            edge_factor: 16,
            seed: 1,
            num_files: 4,
            budget_divisor: 4,
            trials: 1,
            gens: vec![RmatSampler::Faithful, RmatSampler::Linear],
            faithful_max_scale: None,
            k1_max_scale: None,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// `"k0"` or `"k1"`.
    pub kernel: &'static str,
    /// Variant name (see [`K0Variant::name`] / [`K1Variant::name`]).
    pub variant: &'static str,
    /// R-MAT sampler name (see [`RmatSampler::name`]). Kernel-1 rows
    /// carry the sampler whose output they sorted.
    pub gen: &'static str,
    /// Graph scale.
    pub scale: u32,
    /// Thread count the pool was sized to (1 for serial variants).
    pub threads: usize,
    /// Edges in the file set.
    pub edges: u64,
    /// On-disk megabytes of the file set written (decimal MB).
    pub mbytes: f64,
    /// Wall-clock seconds for the whole kernel.
    pub seconds: f64,
    /// `mbytes / seconds` — the paper's Figure-4 axis.
    pub mb_per_s: f64,
    /// `mb_per_s / 1000` — the same rate in decimal GB/s, for reading
    /// the large-scale rows against device bandwidth.
    pub gb_per_s: f64,
}

/// Sizes the global thread pool, surfacing the error as a string (the
/// shim never fails; real rayon could).
fn size_pool(threads: usize) -> Result<(), String> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .map_err(|e| format!("failed to size thread pool to {threads}: {e}"))
}

/// Sums the on-disk bytes of a manifest's files.
fn dir_bytes(dir: &Path, manifest: &Manifest) -> Result<u64, String> {
    let mut total = 0u64;
    for f in &manifest.files {
        let path = dir.join(&f.name);
        let meta =
            std::fs::metadata(&path).map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
        total += meta.len();
    }
    Ok(total)
}

/// Runs one kernel-0 variant into `dir` and returns its manifest.
fn run_k0(cfg: &PipelineConfig, variant: K0Variant, dir: &Path) -> Result<Manifest, String> {
    let err = |e: ppbench_core::Error| format!("k0 {}: {e}", variant.name());
    let generator = kernel0::build_generator(cfg);
    match variant {
        K0Variant::Materialize => {
            let m = cfg.spec.num_edges();
            let edges = generator.edges_parallel(kernel0::GENERATION_CHUNK);
            let io_err = |e: ppbench_io::Error| format!("k0 materialize: {e}");
            let mut writer = EdgeWriter::create(dir, "edges", cfg.num_files, m).map_err(io_err)?;
            writer.write_all(&edges).map_err(io_err)?;
            writer
                .finish(
                    Some(cfg.spec.scale()),
                    Some(cfg.spec.num_vertices()),
                    SortState::Unsorted,
                )
                .map_err(io_err)
        }
        K0Variant::Stream => kernel0::write_streamed(&generator, cfg, dir).map_err(err),
        K0Variant::Sharded => kernel0::write_sharded(&generator, cfg, dir).map_err(err),
    }
}

/// Runs one kernel-1 variant from `in_dir` into `out_dir` and returns the
/// output manifest. `budget_bytes` applies to the spill variants only.
fn run_k1(
    in_dir: &Path,
    out_dir: &Path,
    num_files: usize,
    variant: K1Variant,
    budget_bytes: u64,
) -> Result<Manifest, String> {
    let err = |e: ppbench_core::Error| format!("k1 {}: {e}", variant.name());
    let io_err = |e: ppbench_io::Error| format!("k1 external: {e}");
    match variant {
        K1Variant::InMem => kernel1::sort_file_set(
            in_dir,
            out_dir,
            num_files,
            SortKey::Start,
            Algorithm::Radix,
            None,
        )
        .map_err(err),
        K1Variant::Pipelined => kernel1::sort_file_set(
            in_dir,
            out_dir,
            num_files,
            SortKey::Start,
            Algorithm::Radix,
            Some(budget_bytes),
        )
        .map_err(err),
        K1Variant::External => {
            // The pre-pipeline spill path, preserved as the baseline: one
            // thread reads, sorts runs, merges, and writes, strictly in
            // sequence.
            let (in_manifest, iter) = EdgeReader::open_dir(in_dir).map_err(io_err)?;
            let budget_edges = usize::try_from(budget_bytes / BYTES_PER_EDGE as u64)
                .unwrap_or(usize::MAX)
                .max(1);
            let mut writer = EdgeWriter::create(out_dir, "edges", num_files, in_manifest.edges)
                .map_err(io_err)?;
            let scratch = out_dir.join("sort-scratch");
            let sorter =
                ExternalSorter::new(&scratch, budget_edges, SortKey::Start).map_err(io_err)?;
            let _stats = sorter.sort(iter, |e| writer.write(e)).map_err(io_err)?;
            // ppbench: allow(discarded-result, reason = "best-effort scratch cleanup; the sorted output is already written and a leftover dir is harmless")
            let _ = std::fs::remove_dir_all(&scratch);
            writer
                .finish(
                    in_manifest.scale,
                    in_manifest.vertex_bound,
                    SortKey::Start.sort_state(),
                )
                .map_err(io_err)
        }
    }
}

/// Derives a row's `(mbytes, mb_per_s, gb_per_s)` from raw bytes and
/// seconds, so every rate in the document is computed in exactly one
/// place (the schema gate cross-checks them against the raw fields).
fn rates(bytes: u64, seconds: f64) -> (f64, f64, f64) {
    let mbytes = bytes as f64 / 1e6;
    let mb_per_s = mbytes / seconds.max(1e-15);
    (mbytes, mb_per_s, mb_per_s / 1e3)
}

/// Runs the full sweep. For each scale, kernel 0 runs once per requested
/// sampler (the `gen` axis; the faithful sampler is skipped above
/// [`SweepConfig::faithful_max_scale`]); within a sampler the serial
/// variants run once at one thread and the parallel variants once per
/// requested thread count (the global pool is resized between points).
/// Kernel 1 then runs once per scale from the first sampler's verified
/// kernel-0 output, unless the scale exceeds [`SweepConfig::k1_max_scale`].
/// Each point is measured [`SweepConfig::trials`] times and the fastest
/// repetition is kept, with every repetition digest-checked against its
/// first. Row order is deterministic: scale-major, kernel 0 before
/// kernel 1, then `gens` order, then `ALL` order, then thread order as
/// given. Every measurement's output digest is checked against its
/// kernel's first-measured variant under the same sampler; a mismatch
/// fails the sweep.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    let td = TempDir::new("k01bench").map_err(|e| format!("cannot create scratch dir: {e}"))?;
    if cfg.gens.is_empty() {
        return Err("no samplers to sweep (gens is empty)".to_string());
    }
    let mut rows = Vec::new();
    for &scale in &cfg.scales {
        let gens: Vec<RmatSampler> = cfg
            .gens
            .iter()
            .copied()
            .filter(|g| {
                *g != RmatSampler::Faithful || cfg.faithful_max_scale.is_none_or(|cap| scale <= cap)
            })
            .collect();
        if gens.is_empty() {
            continue;
        }
        // Kernel 1's input: the first sampler's verified kernel-0 output.
        let mut k1_input: Option<(Manifest, std::path::PathBuf, &'static str)> = None;

        // --- Kernel 0: generate + write, once per sampler ---
        for &gen in &gens {
            let pcfg = PipelineConfig::builder()
                .scale(scale)
                .edge_factor(cfg.edge_factor)
                .seed(cfg.seed)
                .num_files(cfg.num_files)
                .gen(gen)
                .build();
            // The first variant measured under each sampler doubles as
            // that sampler's byte-level reference (the two samplers emit
            // different — equally distributed — streams, so references
            // are per-(scale, gen)).
            let mut k0_ref: Option<(Manifest, std::path::PathBuf)> = None;
            for variant in K0Variant::ALL {
                let thread_counts: &[usize] = if variant.is_parallel() {
                    &cfg.threads
                } else {
                    &[1]
                };
                for &threads in thread_counts {
                    size_pool(threads)?;
                    // Best-of-N: the first trial's output is kept (for
                    // the digest reference and as kernel 1's input);
                    // every later trial must reproduce its byte stream
                    // and is deleted.
                    let mut kept: Option<(Manifest, std::path::PathBuf)> = None;
                    let mut seconds = f64::INFINITY;
                    for trial in 0..cfg.trials.max(1) {
                        let dir = td.join(&format!(
                            "s{scale}-{}-k0-{}-t{threads}-r{trial}",
                            gen.name(),
                            variant.name()
                        ));
                        let sw = Stopwatch::start();
                        let manifest = run_k0(&pcfg, variant, &dir)?;
                        seconds = seconds.min(sw.elapsed_secs());
                        match &kept {
                            None => kept = Some((manifest, dir)),
                            Some((first, _)) => {
                                if !manifest.digest.same_stream(&first.digest) {
                                    return Err(format!(
                                        "k0 {} {} trial {trial} (t{threads}, scale {scale}) \
                                         wrote a different edge stream than its first trial",
                                        gen.name(),
                                        variant.name()
                                    ));
                                }
                                std::fs::remove_dir_all(&dir)
                                    .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
                            }
                        }
                    }
                    let Some((manifest, dir)) = kept else {
                        return Err(format!("k0 {} measured no trials", variant.name()));
                    };
                    let bytes = dir_bytes(&dir, &manifest)?;
                    let (mbytes, mb_per_s, gb_per_s) = rates(bytes, seconds);
                    rows.push(SweepRow {
                        kernel: "k0",
                        variant: variant.name(),
                        gen: gen.name(),
                        scale,
                        threads,
                        edges: manifest.edges,
                        mbytes,
                        seconds,
                        mb_per_s,
                        gb_per_s,
                    });
                    match &k0_ref {
                        None => k0_ref = Some((manifest, dir)),
                        Some((reference, _)) => {
                            if !manifest.digest.same_stream(&reference.digest) {
                                return Err(format!(
                                    "k0 {} {} (t{threads}, scale {scale}) wrote a different \
                                     edge stream than the reference",
                                    gen.name(),
                                    variant.name()
                                ));
                            }
                            std::fs::remove_dir_all(&dir)
                                .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
                        }
                    }
                }
            }
            let Some((k0_manifest, k0_dir)) = k0_ref else {
                return Err("kernel 0 measured no variants".to_string());
            };
            if k1_input.is_none() {
                k1_input = Some((k0_manifest, k0_dir, gen.name()));
            } else {
                std::fs::remove_dir_all(&k0_dir)
                    .map_err(|e| format!("cannot clean {}: {e}", k0_dir.display()))?;
            }
        }
        let Some((k0_manifest, k0_dir, k1_gen)) = k1_input else {
            return Err("kernel 0 measured no samplers".to_string());
        };

        // --- Kernel 1: read + sort + write, once per scale ---
        if cfg.k1_max_scale.is_none_or(|cap| scale <= cap) {
            let in_bytes = k0_manifest.edges.saturating_mul(BYTES_PER_EDGE as u64);
            let budget_bytes = (in_bytes / cfg.budget_divisor.max(1)).max(BYTES_PER_EDGE as u64);
            let mut k1_ref: Option<Manifest> = None;
            for variant in K1Variant::ALL {
                let thread_counts: &[usize] = if variant.is_parallel() {
                    &cfg.threads
                } else {
                    &[1]
                };
                for &threads in thread_counts {
                    size_pool(threads)?;
                    // Best-of-N mirrors kernel 0: keep the first trial's
                    // output, require every repetition to reproduce it.
                    let mut kept: Option<(Manifest, std::path::PathBuf)> = None;
                    let mut seconds = f64::INFINITY;
                    for trial in 0..cfg.trials.max(1) {
                        let dir = td.join(&format!(
                            "s{scale}-k1-{}-t{threads}-r{trial}",
                            variant.name()
                        ));
                        let sw = Stopwatch::start();
                        let manifest = run_k1(&k0_dir, &dir, cfg.num_files, variant, budget_bytes)?;
                        seconds = seconds.min(sw.elapsed_secs());
                        match &kept {
                            None => kept = Some((manifest, dir)),
                            Some((first, _)) => {
                                if !manifest.digest.same_stream(&first.digest) {
                                    return Err(format!(
                                        "k1 {} trial {trial} (t{threads}, scale {scale}) \
                                         produced a different sorted stream than its first trial",
                                        variant.name()
                                    ));
                                }
                                std::fs::remove_dir_all(&dir)
                                    .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
                            }
                        }
                    }
                    let Some((manifest, dir)) = kept else {
                        return Err(format!("k1 {} measured no trials", variant.name()));
                    };
                    let bytes = dir_bytes(&dir, &manifest)?;
                    if !manifest.sort_state.is_sorted_by_start() {
                        return Err(format!("k1 {} output is not sorted", variant.name()));
                    }
                    // All three paths are stable sorts, so their output
                    // streams must be byte-identical.
                    match &k1_ref {
                        None => k1_ref = Some(manifest.clone()),
                        Some(reference) => {
                            if !manifest.digest.same_stream(&reference.digest) {
                                return Err(format!(
                                    "k1 {} (t{threads}, scale {scale}) produced a different \
                                     sorted stream than the reference",
                                    variant.name()
                                ));
                            }
                        }
                    }
                    let (mbytes, mb_per_s, gb_per_s) = rates(bytes, seconds);
                    rows.push(SweepRow {
                        kernel: "k1",
                        variant: variant.name(),
                        gen: k1_gen,
                        scale,
                        threads,
                        edges: manifest.edges,
                        mbytes,
                        seconds,
                        mb_per_s,
                        gb_per_s,
                    });
                    std::fs::remove_dir_all(&dir)
                        .map_err(|e| format!("cannot clean {}: {e}", dir.display()))?;
                }
            }
        }
        std::fs::remove_dir_all(&k0_dir)
            .map_err(|e| format!("cannot clean {}: {e}", k0_dir.display()))?;
        // Leave the pool unpinned for whatever runs next in this process.
        size_pool(0)?;
    }
    Ok(rows)
}

/// Renders the sweep as the canonical `BENCH_k01.json` document.
pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_str("kernel", row.kernel)
            .set_str("variant", row.variant)
            .set_str("gen", row.gen)
            .set_u64("scale", u64::from(row.scale))
            .set_u64("threads", row.threads as u64)
            .set_u64("edges", row.edges)
            .set_f64("mbytes", row.mbytes)
            .set_f64("seconds", row.seconds)
            .set_f64("mb_per_s", row.mb_per_s)
            .set_f64("gb_per_s", row.gb_per_s);
        results.push_obj(&entry);
    }
    let gens = cfg
        .gens
        .iter()
        .map(|g| g.name())
        .collect::<Vec<_>>()
        .join(",");
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", SCHEMA_VERSION)
        .set_u64("budget_divisor", cfg.budget_divisor)
        .set_u64("edge_factor", cfg.edge_factor)
        .set_raw("faithful_max_scale", cap_json(cfg.faithful_max_scale))
        .set_str("gens", &gens)
        .set_raw("k1_max_scale", cap_json(cfg.k1_max_scale))
        .set_u64("num_files", cfg.num_files as u64)
        .set_raw("results", results.render())
        .set_u64("seed", cfg.seed)
        .set_u64("trials", cfg.trials as u64);
    obj.render()
}

/// JSON value for an optional scale cap: the number, or `"none"` for an
/// uncapped sweep.
fn cap_json(cap: Option<u32>) -> String {
    match cap {
        Some(v) => v.to_string(),
        None => "\"none\"".to_string(),
    }
}

/// Validates a `BENCH_k01.json` document against the expected schema:
/// correct version tag, exactly [`TOP_KEYS`] at the top level, at least
/// one result row, and exactly [`ROW_KEYS`] on every row, failing on
/// drift in either direction (missing *or* extra keys). On top of the
/// shape check, every row's `mb_per_s` and `gb_per_s` must agree with its
/// own `mbytes / seconds` within 1% — a stale or hand-edited rate is
/// rejected even though the shape is intact.
pub fn check_schema(text: &str) -> Result<(), String> {
    crate::schema::check_flat_schema(text, SCHEMA_VERSION, TOP_KEYS, ROW_KEYS)?;
    crate::schema::check_rate_consistency(
        text,
        "mbytes",
        "seconds",
        &[("mb_per_s", 1.0), ("gb_per_s", 1e-3)],
        0.01,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scales: vec![6],
            threads: vec![1, 2],
            edge_factor: 8,
            seed: 7,
            num_files: 2,
            budget_divisor: 4,
            trials: 1,
            gens: vec![RmatSampler::Faithful, RmatSampler::Linear],
            faithful_max_scale: None,
            k1_max_scale: None,
        }
    }

    /// K0: (stream once + 2 parallel variants × 2 thread counts) per
    /// sampler; K1: inmem once + 2 parallel variants × 2 thread counts,
    /// once per scale.
    const TINY_ROWS: usize = (1 + 2 * 2) * 2 + (1 + 2 * 2);

    #[test]
    fn best_of_n_trials_still_yields_one_row_per_point() {
        let cfg = SweepConfig {
            trials: 2,
            ..tiny_cfg()
        };
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), TINY_ROWS);
    }

    #[test]
    fn sweep_covers_every_variant_and_streams_agree() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), TINY_ROWS);
        for v in K0Variant::ALL {
            for g in RmatSampler::ALL {
                assert!(
                    rows.iter()
                        .any(|r| r.kernel == "k0" && r.variant == v.name() && r.gen == g.name()),
                    "missing k0 {} under {}",
                    v.name(),
                    g.name()
                );
            }
        }
        for v in K1Variant::ALL {
            assert!(
                rows.iter()
                    .any(|r| r.kernel == "k1" && r.variant == v.name()),
                "missing k1 {}",
                v.name()
            );
        }
        for row in &rows {
            assert!(row.mb_per_s > 0.0, "{row:?}");
            assert!(row.edges > 0, "{row:?}");
            assert!(row.mbytes > 0.0, "{row:?}");
            assert!(
                (row.gb_per_s - row.mb_per_s / 1e3).abs() <= row.mb_per_s * 1e-12,
                "{row:?}"
            );
        }
        // Kernel 1 sorts the first swept sampler's output and says so.
        assert!(rows
            .iter()
            .filter(|r| r.kernel == "k1")
            .all(|r| r.gen == "faithful"));
    }

    #[test]
    fn sweep_caps_limit_faithful_and_k1_scales() {
        let cfg = SweepConfig {
            scales: vec![5, 6],
            faithful_max_scale: Some(5),
            k1_max_scale: Some(5),
            ..tiny_cfg()
        };
        let rows = run_sweep(&cfg).unwrap();
        // Scale 5 runs the full matrix; scale 6 is linear-only with no k1.
        assert!(rows
            .iter()
            .any(|r| r.scale == 5 && r.gen == "faithful" && r.kernel == "k0"));
        assert!(rows.iter().any(|r| r.scale == 5 && r.kernel == "k1"));
        assert!(!rows.iter().any(|r| r.scale == 6 && r.gen == "faithful"));
        assert!(!rows.iter().any(|r| r.scale == 6 && r.kernel == "k1"));
        assert!(rows
            .iter()
            .any(|r| r.scale == 6 && r.gen == "linear" && r.kernel == "k0"));
        assert_eq!(rows.len(), TINY_ROWS + 5);
    }

    #[test]
    fn json_roundtrip_passes_schema_check() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        check_schema(&json).unwrap();
    }

    #[test]
    fn schema_check_rejects_drift_in_both_directions() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        // Missing row key.
        let missing = json.replacen("\"mb_per_s\":", "\"mbps\":", 1);
        assert!(check_schema(&missing).is_err());
        // Extra top-level key.
        let extra = json.replacen("{\"benchmark\"", "{\"bonus\":1,\"benchmark\"", 1);
        assert!(check_schema(&extra).is_err());
        // Wrong version tag.
        let wrong = json.replace(SCHEMA_VERSION, "ppbench-k01-v9");
        assert!(check_schema(&wrong).is_err());
        // Empty results.
        assert!(check_schema(&to_json(&cfg, &[])).is_err());
    }

    #[test]
    fn schema_check_rejects_a_doctored_rate() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let mut fast = rows;
        // Inflate one row's headline rate by 10× without touching the raw
        // measurements it is derived from.
        fast[0].mb_per_s *= 10.0;
        let json = to_json(&cfg, &fast);
        let err = check_schema(&json).unwrap_err();
        assert!(err.contains("mb_per_s"), "{err}");
    }
}
