//! End-to-end pipeline bench: staged vs. fused K1→K2 data path.
//!
//! The tentpole question this sweep answers: does building the CSR
//! matrix straight from the sorted-run merge stream (one pass, parallel
//! by vertex range, no intermediate sorted file set) beat the staged
//! path that writes kernel 1's output to disk and re-reads it for
//! kernel 2? Each scale generates one kernel-0 file set, then measures
//! the staged path (serial reference, one thread) and the fused path at
//! each requested thread count, keeping the fastest of `trials`
//! repetitions per point.
//!
//! Speed without sameness is a failed sweep, not a benchmark result:
//! every measured repetition's matrix and [`FilterStats`] must equal the
//! staged reference bit for bit, and its sorted-stream digest (the
//! concatenation of the fused path's per-bucket digests) must equal the
//! staged `(start, end)`-sorted stream digest — chain component
//! included. A mismatch anywhere aborts the sweep.
//!
//! Results land in `BENCH_pipeline.json` as canonical JSON (sorted keys,
//! shortest-roundtrip floats, rendered by `ppbench_core::json`); the
//! `--check` mode re-validates that file's schema so CI catches drift in
//! either direction.

use std::path::Path;

use ppbench_core::backend::{Backend, OptimizedBackend};
use ppbench_core::json::{JsonArray, JsonObject};
use ppbench_core::kernel2::FilterStats;
use ppbench_core::{PipelineConfig, Stopwatch};
use ppbench_io::checksum::EdgeDigest;
use ppbench_io::tempdir::TempDir;
use ppbench_sort::SortKey;
use ppbench_sparse::Csr;

/// Version tag written into the JSON so schema changes are explicit.
pub const SCHEMA_VERSION: &str = "ppbench-pipeline-v1";

/// Top-level keys of the benchmark file, sorted (canonical order).
pub const TOP_KEYS: &[&str] = &[
    "benchmark",
    "edge_factor",
    "num_files",
    "results",
    "seed",
    "trials",
];

/// Keys of each result row, sorted (canonical order).
pub const ROW_KEYS: &[&str] = &[
    "edges",
    "edges_per_s",
    "k1_seconds",
    "k2_seconds",
    "mode",
    "scale",
    "seconds",
    "threads",
];

/// The two K1→K2 data paths under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeMode {
    /// The legacy path: kernel 1 sorts to a file set on disk, kernel 2
    /// re-reads it and builds the matrix — the serial reference.
    Staged,
    /// The fused path: CSR built straight from the merge stream, one
    /// worker per contiguous vertex range.
    Fused,
}

impl PipeMode {
    /// Every mode, measurement order (the first is the reference).
    pub const ALL: [PipeMode; 2] = [PipeMode::Staged, PipeMode::Fused];

    /// Stable name used in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            PipeMode::Staged => "staged",
            PipeMode::Fused => "fused",
        }
    }

    /// Whether the mode uses the thread pool (the staged path is the
    /// serial baseline, measured once at `threads = 1`).
    pub fn is_parallel(self) -> bool {
        matches!(self, PipeMode::Fused)
    }
}

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Graph scales (vertices = 2^scale).
    pub scales: Vec<u32>,
    /// Thread counts for the fused path.
    pub threads: Vec<usize>,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Master seed for generation.
    pub seed: u64,
    /// Output files per edge file set.
    pub num_files: usize,
    /// Measurement repetitions per point; the fastest trial is kept
    /// (best-of-N damps scheduler and page-cache noise).
    pub trials: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scales: vec![12],
            threads: vec![1, 2, 4],
            edge_factor: 16,
            seed: 1,
            num_files: 4,
            trials: 1,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Mode name (see [`PipeMode::name`]).
    pub mode: &'static str,
    /// Graph scale.
    pub scale: u32,
    /// Thread count the pool was sized to (1 for the staged baseline).
    pub threads: usize,
    /// Edges in the input file set.
    pub edges: u64,
    /// Wall-clock seconds of the kernel-1 portion (sort / route+spill).
    pub k1_seconds: f64,
    /// Wall-clock seconds of the kernel-2 portion (read+build / merge+build).
    pub k2_seconds: f64,
    /// End-to-end K1→K2 wall-clock seconds.
    pub seconds: f64,
    /// `edges / seconds` — the headline end-to-end throughput.
    pub edges_per_s: f64,
}

/// One measured repetition, before the identity gate.
struct Measured {
    k1_seconds: f64,
    k2_seconds: f64,
    digest: EdgeDigest,
    stats: FilterStats,
    matrix: Csr<f64>,
}

/// What every later repetition must reproduce (the staged run at one
/// thread, the first point measured).
struct Reference {
    digest: EdgeDigest,
    stats: FilterStats,
    matrix: Csr<f64>,
}

/// Runs the staged path once: kernel 1 to a scratch file set, kernel 2
/// re-reading it. The intermediate file set is deleted before returning
/// so repeated trials cannot fill the disk.
fn run_staged(cfg: &PipelineConfig, k0_dir: &Path, work: &Path) -> Result<Measured, String> {
    let backend = OptimizedBackend;
    let k1_dir = work.join("k1");
    let sw = Stopwatch::start();
    let manifest = backend
        .kernel1(cfg, k0_dir, &k1_dir)
        .map_err(|e| format!("staged kernel 1: {e}"))?;
    let k1_seconds = sw.elapsed_secs();
    let sw = Stopwatch::start();
    let out = backend
        .kernel2(cfg, &k1_dir)
        .map_err(|e| format!("staged kernel 2: {e}"))?;
    let k2_seconds = sw.elapsed_secs();
    std::fs::remove_dir_all(&k1_dir)
        .map_err(|e| format!("cannot clean {}: {e}", k1_dir.display()))?;
    Ok(Measured {
        k1_seconds,
        k2_seconds,
        digest: manifest.digest,
        stats: out.stats,
        matrix: out.matrix,
    })
}

/// Runs the fused path once. The kernel splits its own timing at the
/// routing/merge boundary, so the K1/K2 attribution comes from the
/// kernel itself rather than an outer stopwatch.
fn run_fused(cfg: &PipelineConfig, k0_dir: &Path, work: &Path) -> Result<Measured, String> {
    let got = OptimizedBackend
        .kernel12_fused(cfg, k0_dir, &work.join("scratch"))
        .map_err(|e| format!("fused kernel 1+2: {e}"))?;
    Ok(Measured {
        k1_seconds: got.k1.timing.seconds,
        k2_seconds: got.k2.timing.seconds,
        digest: got.k1.digest,
        stats: got.k2.stats,
        matrix: got.output.matrix,
    })
}

/// Runs the full sweep. For each scale, kernel 0 writes one input file
/// set (unmeasured), the staged baseline runs at one thread, and the
/// fused path runs at every requested thread count; each point keeps the
/// fastest of [`SweepConfig::trials`] repetitions. Every repetition —
/// not just the kept one — must match the staged reference's matrix,
/// filter stats, and sorted-stream digest exactly. Row order is
/// deterministic: scale-major, staged before fused, then thread order as
/// given.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    let td = TempDir::new("pipebench").map_err(|e| format!("cannot create scratch dir: {e}"))?;
    let mut rows = Vec::new();
    for &scale in &cfg.scales {
        // `StartEnd` so the staged sorted stream is byte-comparable to
        // the fused path's concatenated per-bucket digests.
        let pcfg = PipelineConfig::builder()
            .scale(scale)
            .edge_factor(cfg.edge_factor)
            .seed(cfg.seed)
            .num_files(cfg.num_files)
            .sort_key(SortKey::StartEnd)
            .build();
        let k0_dir = td.join(&format!("s{scale}-k0"));
        let k0_manifest = OptimizedBackend
            .kernel0(&pcfg, &k0_dir)
            .map_err(|e| format!("kernel 0: {e}"))?;

        let mut reference: Option<Reference> = None;
        for mode in PipeMode::ALL {
            let thread_counts: &[usize] = if mode.is_parallel() {
                &cfg.threads
            } else {
                &[1]
            };
            for &threads in thread_counts {
                crate::k3::size_pool(threads)?;
                let mut best: Option<(f64, f64)> = None;
                for trial in 0..cfg.trials.max(1) {
                    let work = td.join(&format!("s{scale}-{}-t{threads}-r{trial}", mode.name()));
                    let measured = match mode {
                        PipeMode::Staged => run_staged(&pcfg, &k0_dir, &work),
                        PipeMode::Fused => run_fused(&pcfg, &k0_dir, &work),
                    }?;
                    match &reference {
                        None => {
                            reference = Some(Reference {
                                digest: measured.digest,
                                stats: measured.stats,
                                matrix: measured.matrix,
                            });
                        }
                        Some(r) => {
                            let point = format!(
                                "{} (t{threads}, trial {trial}, scale {scale})",
                                mode.name()
                            );
                            if !measured.digest.same_stream(&r.digest) {
                                return Err(format!(
                                    "{point}: sorted-stream digest differs from the \
                                     staged reference"
                                ));
                            }
                            if measured.stats != r.stats {
                                return Err(format!(
                                    "{point}: filter stats differ from the staged reference"
                                ));
                            }
                            if measured.matrix != r.matrix {
                                return Err(format!(
                                    "{point}: matrix differs from the staged reference"
                                ));
                            }
                        }
                    }
                    let total = measured.k1_seconds + measured.k2_seconds;
                    if best.is_none_or(|(k1, k2)| total < k1 + k2) {
                        best = Some((measured.k1_seconds, measured.k2_seconds));
                    }
                }
                let Some((k1_seconds, k2_seconds)) = best else {
                    return Err(format!("{} measured no trials", mode.name()));
                };
                let seconds = k1_seconds + k2_seconds;
                rows.push(SweepRow {
                    mode: mode.name(),
                    scale,
                    threads,
                    edges: k0_manifest.edges,
                    k1_seconds,
                    k2_seconds,
                    seconds,
                    edges_per_s: k0_manifest.edges as f64 / seconds.max(1e-15),
                });
            }
        }
        std::fs::remove_dir_all(&k0_dir)
            .map_err(|e| format!("cannot clean {}: {e}", k0_dir.display()))?;
        // Leave the pool unpinned for whatever runs next in this process.
        crate::k3::size_pool(0)?;
    }
    Ok(rows)
}

/// Renders the sweep as the canonical `BENCH_pipeline.json` document.
pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_str("mode", row.mode)
            .set_u64("scale", u64::from(row.scale))
            .set_u64("threads", row.threads as u64)
            .set_u64("edges", row.edges)
            .set_f64("k1_seconds", row.k1_seconds)
            .set_f64("k2_seconds", row.k2_seconds)
            .set_f64("seconds", row.seconds)
            .set_f64("edges_per_s", row.edges_per_s);
        results.push_obj(&entry);
    }
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", SCHEMA_VERSION)
        .set_u64("edge_factor", cfg.edge_factor)
        .set_u64("num_files", cfg.num_files as u64)
        .set_raw("results", results.render())
        .set_u64("seed", cfg.seed)
        .set_u64("trials", cfg.trials as u64);
    obj.render()
}

/// Validates a `BENCH_pipeline.json` document against the expected
/// schema: correct version tag, exactly [`TOP_KEYS`] at the top level,
/// at least one result row, and exactly [`ROW_KEYS`] on every row. Fails
/// on drift in either direction (missing *or* extra keys).
pub fn check_schema(text: &str) -> Result<(), String> {
    crate::schema::check_flat_schema(text, SCHEMA_VERSION, TOP_KEYS, ROW_KEYS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scales: vec![6],
            threads: vec![1, 2],
            edge_factor: 8,
            seed: 7,
            num_files: 2,
            trials: 1,
        }
    }

    #[test]
    fn sweep_covers_both_modes_and_stays_bit_identical() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        // Staged once + fused × 2 thread counts.
        assert_eq!(rows.len(), 1 + 2);
        for mode in PipeMode::ALL {
            assert!(
                rows.iter().any(|r| r.mode == mode.name()),
                "missing {}",
                mode.name()
            );
        }
        for row in &rows {
            assert!(row.edges > 0, "{row:?}");
            assert!(row.edges_per_s > 0.0, "{row:?}");
            assert!(row.seconds >= row.k1_seconds.max(row.k2_seconds), "{row:?}");
        }
    }

    #[test]
    fn best_of_n_trials_still_yields_one_row_per_point() {
        let cfg = SweepConfig {
            trials: 2,
            ..tiny_cfg()
        };
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), 1 + 2);
    }

    #[test]
    fn json_roundtrip_passes_schema_check() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        check_schema(&json).unwrap();
    }

    #[test]
    fn schema_check_rejects_drift_in_both_directions() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        // Missing row key.
        let missing = json.replacen("\"edges_per_s\":", "\"eps\":", 1);
        assert!(check_schema(&missing).is_err());
        // Extra top-level key.
        let extra = json.replacen("{\"benchmark\"", "{\"bonus\":1,\"benchmark\"", 1);
        assert!(check_schema(&extra).is_err());
        // Wrong version tag.
        let wrong = json.replace(SCHEMA_VERSION, "ppbench-pipeline-v9");
        assert!(check_schema(&wrong).is_err());
        // Empty results.
        assert!(check_schema(&to_json(&cfg, &[])).is_err());
    }
}
