//! Shared canonical-JSON schema validation for the bench trajectory files.
//!
//! Both `BENCH_k3.json` and `BENCH_k01.json` are flat two-level documents:
//! a top-level object with a version tag plus config keys, and a `results`
//! array of uniform row objects. The checks here validate that shape
//! against an expected key set, failing on drift in either direction
//! (missing *or* extra keys), without needing a JSON parser.

/// Collects every JSON object key in `text` together with its brace/bracket
/// depth (top-level object keys are depth 1). Strings are scanned with
/// escape handling, so values containing braces cannot confuse the count.
pub(crate) fn keys_by_depth(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut depth = 0u32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let end = j.min(bytes.len());
                let is_key = bytes.get(end + 1) == Some(&b':');
                if is_key {
                    out.push((depth, text[start..end].to_string()));
                }
                i = end + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Validates a flat benchmark document: correct version tag, exactly
/// `top_keys` at the top level, at least one result row, and exactly
/// `row_keys` on every row. Both key lists must be pre-sorted (canonical
/// order).
pub(crate) fn check_flat_schema(
    text: &str,
    version: &str,
    top_keys: &[&str],
    row_keys: &[&str],
) -> Result<(), String> {
    if !text.contains(&format!("\"benchmark\":\"{version}\"")) {
        return Err(format!("missing or wrong version tag {version:?}"));
    }
    let keys = keys_by_depth(text);
    let mut top: Vec<&str> = keys
        .iter()
        .filter(|(d, _)| *d == 1)
        .map(|(_, k)| k.as_str())
        .collect();
    top.sort_unstable();
    if top != top_keys {
        return Err(format!("top-level keys {top:?} != expected {top_keys:?}"));
    }
    let row: Vec<&str> = keys
        .iter()
        .filter(|(d, _)| *d == 3)
        .map(|(_, k)| k.as_str())
        .collect();
    if row.is_empty() {
        return Err("no result rows".to_string());
    }
    if !row.len().is_multiple_of(row_keys.len()) {
        return Err(format!(
            "result rows carry {} keys total, not a multiple of {}",
            row.len(),
            row_keys.len()
        ));
    }
    for (r, chunk) in row.chunks(row_keys.len()).enumerate() {
        let mut got: Vec<&str> = chunk.to_vec();
        got.sort_unstable();
        if got != row_keys {
            return Err(format!("row {r} keys {got:?} != expected {row_keys:?}"));
        }
    }
    Ok(())
}

/// Extracts the text span of every result-row object (objects at depth 3:
/// top object → results array → row). Strings are skipped with escape
/// handling, like [`keys_by_depth`].
pub(crate) fn result_rows(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut depth = 0u32;
    let mut start = None;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                if bytes[i] == b'{' && depth == 2 {
                    start = Some(i);
                }
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                if bytes[i] == b'}' && depth == 2 {
                    if let Some(s) = start.take() {
                        out.push(&text[s..=i]);
                    }
                }
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses the numeric value of `key` inside one row's text span.
pub(crate) fn field_f64(row: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let at = row
        .find(&pat)
        .ok_or_else(|| format!("row is missing numeric field {key:?}"))?;
    let rest = &row[at + pat.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated value for {key:?}"))?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("field {key:?} is not a number: {e}"))
}

/// Cross-checks every result row's reported rates against its own
/// size/seconds fields: for each `(rate_key, factor)`, the row must satisfy
/// `rate ≈ size / seconds × factor` within `rel_tol` relative error. A row
/// whose rate disagrees with its raw measurements by more than the
/// tolerance is rejected — stale or hand-edited rates cannot survive a
/// schema check.
pub(crate) fn check_rate_consistency(
    text: &str,
    size_key: &str,
    secs_key: &str,
    rates: &[(&str, f64)],
    rel_tol: f64,
) -> Result<(), String> {
    let rows = result_rows(text);
    if rows.is_empty() {
        return Err("no result rows to rate-check".to_string());
    }
    for (r, row) in rows.iter().enumerate() {
        let size = field_f64(row, size_key)?;
        let seconds = field_f64(row, secs_key)?;
        if !seconds.is_finite() || seconds <= 0.0 {
            return Err(format!("row {r}: non-positive seconds {seconds}"));
        }
        for &(rate_key, factor) in rates {
            let reported = field_f64(row, rate_key)?;
            let implied = size / seconds * factor;
            let rel = (reported - implied).abs() / implied.abs().max(f64::MIN_POSITIVE);
            if rel > rel_tol {
                return Err(format!(
                    "row {r}: {rate_key} = {reported} disagrees with \
                     {size_key}/{secs_key}·{factor} = {implied} by {:.1}% (> {:.0}%)",
                    rel * 100.0,
                    rel_tol * 100.0
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_by_depth_handles_escapes_and_braces_in_values() {
        let text = r#"{"a":"{not a key}","b":[{"c":"\"x\"","d":1}]}"#;
        let keys = keys_by_depth(text);
        assert_eq!(
            keys,
            vec![
                (1, "a".to_string()),
                (1, "b".to_string()),
                (3, "c".to_string()),
                (3, "d".to_string()),
            ]
        );
    }

    #[test]
    fn flat_schema_rejects_missing_and_extra_keys() {
        let good = r#"{"benchmark":"v1","results":[{"x":1,"y":2}]}"#;
        check_flat_schema(good, "v1", &["benchmark", "results"], &["x", "y"]).unwrap();
        assert!(check_flat_schema(good, "v2", &["benchmark", "results"], &["x", "y"]).is_err());
        assert!(check_flat_schema(good, "v1", &["benchmark", "results"], &["x"]).is_err());
        assert!(
            check_flat_schema(good, "v1", &["benchmark", "extra", "results"], &["x", "y"]).is_err()
        );
        let empty = r#"{"benchmark":"v1","results":[]}"#;
        assert!(check_flat_schema(empty, "v1", &["benchmark", "results"], &["x", "y"]).is_err());
    }

    #[test]
    fn result_rows_extracts_each_depth_3_object() {
        let text = r#"{"benchmark":"v1","results":[{"a":1,"b":"x}y"},{"a":2,"b":"z"}]}"#;
        let rows = result_rows(text);
        assert_eq!(rows, vec![r#"{"a":1,"b":"x}y"}"#, r#"{"a":2,"b":"z"}"#]);
        assert!(result_rows(r#"{"benchmark":"v1","results":[]}"#).is_empty());
    }

    #[test]
    fn field_f64_parses_and_reports_missing_fields() {
        let row = r#"{"mbytes":12.5,"seconds":0.25,"gen":"linear"}"#;
        assert_eq!(field_f64(row, "mbytes").unwrap(), 12.5);
        assert_eq!(field_f64(row, "seconds").unwrap(), 0.25);
        assert!(field_f64(row, "absent").is_err());
        assert!(field_f64(row, "gen").is_err());
    }

    #[test]
    fn rate_consistency_accepts_true_rates_and_rejects_drifted_ones() {
        let rates: &[(&str, f64)] = &[("mb_per_s", 1.0), ("gb_per_s", 1e-3)];
        let good = concat!(
            r#"{"benchmark":"v1","results":["#,
            r#"{"mbytes":10.0,"seconds":2.0,"mb_per_s":5.0,"gb_per_s":0.005}]}"#
        );
        check_rate_consistency(good, "mbytes", "seconds", rates, 0.01).unwrap();

        // A rate off by 4% must be rejected; one off by 0.4% must pass.
        let drifted = good.replace("\"mb_per_s\":5.0", "\"mb_per_s\":5.2");
        let err = check_rate_consistency(&drifted, "mbytes", "seconds", rates, 0.01).unwrap_err();
        assert!(err.contains("mb_per_s"), "{err}");
        let close = good.replace("\"mb_per_s\":5.0", "\"mb_per_s\":5.02");
        check_rate_consistency(&close, "mbytes", "seconds", rates, 0.01).unwrap();

        // Both rates are checked independently.
        let bad_gb = good.replace("\"gb_per_s\":0.005", "\"gb_per_s\":0.006");
        assert!(check_rate_consistency(&bad_gb, "mbytes", "seconds", rates, 0.01).is_err());

        // Degenerate rows cannot slip through.
        let zero_secs = good.replace("\"seconds\":2.0", "\"seconds\":0.0");
        assert!(check_rate_consistency(&zero_secs, "mbytes", "seconds", rates, 0.01).is_err());
        let no_rows = r#"{"benchmark":"v1","results":[]}"#;
        assert!(check_rate_consistency(no_rows, "mbytes", "seconds", rates, 0.01).is_err());
    }
}
