//! Shared canonical-JSON schema validation for the bench trajectory files.
//!
//! Both `BENCH_k3.json` and `BENCH_k01.json` are flat two-level documents:
//! a top-level object with a version tag plus config keys, and a `results`
//! array of uniform row objects. The checks here validate that shape
//! against an expected key set, failing on drift in either direction
//! (missing *or* extra keys), without needing a JSON parser.

/// Collects every JSON object key in `text` together with its brace/bracket
/// depth (top-level object keys are depth 1). Strings are scanned with
/// escape handling, so values containing braces cannot confuse the count.
pub(crate) fn keys_by_depth(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut depth = 0u32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let end = j.min(bytes.len());
                let is_key = bytes.get(end + 1) == Some(&b':');
                if is_key {
                    out.push((depth, text[start..end].to_string()));
                }
                i = end + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Validates a flat benchmark document: correct version tag, exactly
/// `top_keys` at the top level, at least one result row, and exactly
/// `row_keys` on every row. Both key lists must be pre-sorted (canonical
/// order).
pub(crate) fn check_flat_schema(
    text: &str,
    version: &str,
    top_keys: &[&str],
    row_keys: &[&str],
) -> Result<(), String> {
    if !text.contains(&format!("\"benchmark\":\"{version}\"")) {
        return Err(format!("missing or wrong version tag {version:?}"));
    }
    let keys = keys_by_depth(text);
    let mut top: Vec<&str> = keys
        .iter()
        .filter(|(d, _)| *d == 1)
        .map(|(_, k)| k.as_str())
        .collect();
    top.sort_unstable();
    if top != top_keys {
        return Err(format!("top-level keys {top:?} != expected {top_keys:?}"));
    }
    let row: Vec<&str> = keys
        .iter()
        .filter(|(d, _)| *d == 3)
        .map(|(_, k)| k.as_str())
        .collect();
    if row.is_empty() {
        return Err("no result rows".to_string());
    }
    if !row.len().is_multiple_of(row_keys.len()) {
        return Err(format!(
            "result rows carry {} keys total, not a multiple of {}",
            row.len(),
            row_keys.len()
        ));
    }
    for (r, chunk) in row.chunks(row_keys.len()).enumerate() {
        let mut got: Vec<&str> = chunk.to_vec();
        got.sort_unstable();
        if got != row_keys {
            return Err(format!("row {r} keys {got:?} != expected {row_keys:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_by_depth_handles_escapes_and_braces_in_values() {
        let text = r#"{"a":"{not a key}","b":[{"c":"\"x\"","d":1}]}"#;
        let keys = keys_by_depth(text);
        assert_eq!(
            keys,
            vec![
                (1, "a".to_string()),
                (1, "b".to_string()),
                (3, "c".to_string()),
                (3, "d".to_string()),
            ]
        );
    }

    #[test]
    fn flat_schema_rejects_missing_and_extra_keys() {
        let good = r#"{"benchmark":"v1","results":[{"x":1,"y":2}]}"#;
        check_flat_schema(good, "v1", &["benchmark", "results"], &["x", "y"]).unwrap();
        assert!(check_flat_schema(good, "v2", &["benchmark", "results"], &["x", "y"]).is_err());
        assert!(check_flat_schema(good, "v1", &["benchmark", "results"], &["x"]).is_err());
        assert!(
            check_flat_schema(good, "v1", &["benchmark", "extra", "results"], &["x", "y"]).is_err()
        );
        let empty = r#"{"benchmark":"v1","results":[]}"#;
        assert!(check_flat_schema(empty, "v1", &["benchmark", "results"], &["x", "y"]).is_err());
    }
}
