//! Staged-vs-fused end-to-end pipeline bench driver.
//!
//! ```text
//! cargo run --release -p ppbench-bench --bin pipebench -- \
//!     [--scales LO:HI] [--threads 1,2,4] [--edge-factor K] [--seed N] \
//!     [--num-files N] [--trials N] [--out PATH]
//! cargo run -p ppbench-bench --bin pipebench -- --check BENCH_pipeline.json
//! ```
//!
//! Measures the K1→K2 data path end to end — the staged serial baseline
//! (sort to disk, re-read, build) against the fused path (CSR built
//! straight from the merge stream) at each requested thread count — and
//! writes the canonical-JSON trajectory file. Every repetition is gated
//! on bit-identical matrix, filter stats, and sorted-stream digest
//! against the staged reference, so a fast-but-wrong fused run fails the
//! sweep instead of producing a row. `--check` validates an existing
//! file against the expected schema and exits nonzero on drift.

use std::process::exit;

use ppbench_bench::k3::parse_thread_list;
use ppbench_bench::pipe::{self, SweepConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pipebench [--scales LO:HI] [--threads N,N,...] [--edge-factor K]\n\
         \x20               [--seed N] [--num-files N] [--trials N] [--out PATH]\n\
         \x20       pipebench --check PATH   (validate an existing BENCH_pipeline.json)"
    );
    exit(2)
}

fn main() {
    let mut cfg = SweepConfig::default();
    let mut out = std::path::PathBuf::from("BENCH_pipeline.json");
    let mut check: Option<std::path::PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scales" => {
                cfg.scales = ppbench_bench::parse_scale_range(&value())
                    .unwrap_or_else(|| usage())
                    .collect();
            }
            "--threads" => {
                cfg.threads = parse_thread_list(&value()).unwrap_or_else(|| usage());
            }
            "--edge-factor" => cfg.edge_factor = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--num-files" => {
                cfg.num_files = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--trials" => {
                cfg.trials = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--out" => out = std::path::PathBuf::from(value()),
            "--check" => check = Some(std::path::PathBuf::from(value())),
            _ => usage(),
        }
    }

    // Validation mode: no measurement, just the schema gate CI relies on.
    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(1);
            }
        };
        match pipe::check_schema(&text) {
            Ok(()) => {
                println!("{}: schema ok ({})", path.display(), pipe::SCHEMA_VERSION);
                return;
            }
            Err(e) => {
                eprintln!("{}: schema drift: {e}", path.display());
                exit(1);
            }
        }
    }

    let rows = match pipe::run_sweep(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    println!(
        "{:>5} {:>7} {:>7} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "scale", "mode", "threads", "edges", "k1 (s)", "k2 (s)", "total (s)", "edges/s"
    );
    for r in &rows {
        println!(
            "{:>5} {:>7} {:>7} {:>12} {:>10.4} {:>10.4} {:>10.4} {:>12.3e}",
            r.scale,
            r.mode,
            r.threads,
            r.edges,
            r.k1_seconds,
            r.k2_seconds,
            r.seconds,
            r.edges_per_s
        );
    }

    let json = pipe::to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1);
    }
    println!("wrote {}", out.display());
}
