//! K0→K1 front-end microbench driver.
//!
//! ```text
//! cargo run --release -p ppbench-bench --bin k01bench -- \
//!     [--scales LO:HI,N,...] [--threads 1,2,4] [--edge-factor K] [--seed N] \
//!     [--num-files N] [--budget-divisor D] [--trials N] \
//!     [--gens faithful,linear] [--faithful-max-scale S] [--k1-max-scale S] \
//!     [--out PATH]
//! cargo run -p ppbench-bench --bin k01bench -- --check BENCH_k01.json
//! ```
//!
//! Sweeps the kernel-0 write strategies (materialize, stream, sharded)
//! under each requested R-MAT sampler and the kernel-1 sort paths
//! (in-memory, external, pipelined) over explicit thread counts and
//! scales, prints a human-readable table, and writes the canonical-JSON
//! trajectory file. The max-scale caps let one sweep mix a full
//! comparison matrix at moderate scales with linear-only kernel-0 stress
//! points at the top end. `--check` validates an existing file against
//! the expected schema (shape plus rate consistency) and exits nonzero
//! on drift.

use std::process::exit;

use ppbench_bench::k01::{self, SweepConfig};
use ppbench_bench::k3::parse_thread_list;
use ppbench_gen::RmatSampler;

fn usage() -> ! {
    eprintln!(
        "usage: k01bench [--scales LO:HI,N,...] [--threads N,N,...] [--edge-factor K]\n\
         \x20               [--seed N] [--num-files N] [--budget-divisor D]\n\
         \x20               [--trials N] [--gens faithful,linear]\n\
         \x20               [--faithful-max-scale S] [--k1-max-scale S] [--out PATH]\n\
         \x20       k01bench --check PATH   (validate an existing BENCH_k01.json)"
    );
    exit(2)
}

/// Parses the `--gens` comma list into samplers, rejecting unknown names.
fn parse_gen_list(s: &str) -> Option<Vec<RmatSampler>> {
    let gens: Option<Vec<RmatSampler>> = s.split(',').map(RmatSampler::parse).collect();
    gens.filter(|g| !g.is_empty())
}

fn main() {
    let mut cfg = SweepConfig::default();
    let mut out = std::path::PathBuf::from("BENCH_k01.json");
    let mut check: Option<std::path::PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scales" => {
                cfg.scales = ppbench_bench::parse_scale_list(&value()).unwrap_or_else(|| usage());
            }
            "--gens" => {
                cfg.gens = parse_gen_list(&value()).unwrap_or_else(|| usage());
            }
            "--faithful-max-scale" => {
                cfg.faithful_max_scale = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--k1-max-scale" => {
                cfg.k1_max_scale = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--threads" => {
                cfg.threads = parse_thread_list(&value()).unwrap_or_else(|| usage());
            }
            "--edge-factor" => cfg.edge_factor = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--num-files" => {
                cfg.num_files = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--budget-divisor" => {
                cfg.budget_divisor = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--trials" => {
                cfg.trials = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--out" => out = std::path::PathBuf::from(value()),
            "--check" => check = Some(std::path::PathBuf::from(value())),
            _ => usage(),
        }
    }

    // Validation mode: no measurement, just the schema gate CI relies on.
    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(1);
            }
        };
        match k01::check_schema(&text) {
            Ok(()) => {
                println!("{}: schema ok ({})", path.display(), k01::SCHEMA_VERSION);
                return;
            }
            Err(e) => {
                eprintln!("{}: schema drift: {e}", path.display());
                exit(1);
            }
        }
    }

    let rows = match k01::run_sweep(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    println!(
        "{:>5} {:>6} {:>9} {:>12} {:>7} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "scale", "kernel", "gen", "variant", "threads", "edges", "MB", "seconds", "MB/s", "GB/s"
    );
    for r in &rows {
        println!(
            "{:>5} {:>6} {:>9} {:>12} {:>7} {:>12} {:>10.2} {:>10.4} {:>10.2} {:>8.4}",
            r.scale,
            r.kernel,
            r.gen,
            r.variant,
            r.threads,
            r.edges,
            r.mbytes,
            r.seconds,
            r.mb_per_s,
            r.gb_per_s
        );
    }

    let json = k01::to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1);
    }
    println!("wrote {}", out.display());
}
