//! Analytics-workload microbench driver.
//!
//! ```text
//! cargo run --release -p ppbench-bench --bin algobench -- \
//!     [--scales LO:HI] [--threads 1,2,4,8] [--edge-factor K] [--seed N] \
//!     [--out PATH]
//! cargo run -p ppbench-bench --bin algobench -- --check BENCH_algo.json
//! ```
//!
//! Sweeps the `ppbench-algo` workloads (BFS, CC, SSSP, TC) — serial
//! oracle plus the optimized kernel at explicit thread counts — over the
//! same kernel-2 matrices the pipeline produces, prints a human-readable
//! table, and writes the canonical-JSON trajectory file. `--check`
//! validates an existing file against the expected schema and exits
//! nonzero on drift.

use std::process::exit;

use ppbench_bench::algo::{self, SweepConfig};
use ppbench_bench::k3;

fn usage() -> ! {
    eprintln!(
        "usage: algobench [--scales LO:HI] [--threads N,N,...] [--edge-factor K]\n\
         \x20                [--seed N] [--out PATH]\n\
         \x20       algobench --check PATH   (validate an existing BENCH_algo.json)"
    );
    exit(2)
}

fn main() {
    let mut cfg = SweepConfig::default();
    let mut out = std::path::PathBuf::from("BENCH_algo.json");
    let mut check: Option<std::path::PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scales" => {
                cfg.scales = ppbench_bench::parse_scale_range(&value())
                    .unwrap_or_else(|| usage())
                    .collect();
            }
            "--threads" => {
                cfg.threads = k3::parse_thread_list(&value()).unwrap_or_else(|| usage());
            }
            "--edge-factor" => cfg.edge_factor = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out = std::path::PathBuf::from(value()),
            "--check" => check = Some(std::path::PathBuf::from(value())),
            _ => usage(),
        }
    }

    // Validation mode: no measurement, just the schema gate CI relies on.
    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(1);
            }
        };
        match algo::check_schema(&text) {
            Ok(()) => {
                println!("{}: schema ok ({})", path.display(), algo::SCHEMA_VERSION);
                return;
            }
            Err(e) => {
                eprintln!("{}: schema drift: {e}", path.display());
                exit(1);
            }
        }
    }

    let rows = match algo::run_sweep(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    println!(
        "{:>5} {:>8} {:>10} {:>7} {:>12} {:>12} {:>10} {:>10} {:>12} {:>7}",
        "scale",
        "workload",
        "impl",
        "threads",
        "vertices",
        "edges",
        "seconds",
        "MEPS",
        "stat",
        "match"
    );
    for r in &rows {
        println!(
            "{:>5} {:>8} {:>10} {:>7} {:>12} {:>12} {:>10.4} {:>10.2} {:>12} {:>7}",
            r.scale,
            r.workload,
            r.impl_name,
            r.threads,
            r.vertices,
            r.edges,
            r.seconds,
            r.meps,
            r.stat,
            r.matches_serial
        );
    }

    let json = algo::to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1);
    }
    println!("wrote {}", out.display());
}
