//! Serving-layer bench driver: latency/saturation of `ppbench-serve`.
//!
//! ```text
//! cargo run --release -p ppbench-bench --bin servebench -- \
//!     [--scale N] [--edge-factor K] [--seed N] [--workers N] \
//!     [--rates 500,1000,2000] [--requests N] [--bursts 256,4096] \
//!     [--spawn] [--out PATH]
//! cargo run -p ppbench-bench --bin servebench -- --check BENCH_serve.json
//! ```
//!
//! Starts a server (in-process by default; `--spawn` runs the sibling
//! `ppserved` binary in its own process so driver and server each get
//! their own fd budget — required for 10k+ connection bursts), prewarms
//! one pipeline config to `Done`, then measures open-loop rows at each
//! offered rate and burst rows at each connection count. `--check`
//! validates an existing file's schema and rate consistency and exits
//! nonzero on drift.

use std::process::exit;

use ppbench_bench::k3::parse_thread_list;
use ppbench_bench::serve::{self, parse_rate_list, SweepConfig};

fn usage() -> ! {
    eprintln!(
        "usage: servebench [--scale N] [--edge-factor K] [--seed N] [--workers N]\n\
         \x20                [--rates R,R,...] [--requests N] [--bursts N,N,...]\n\
         \x20                [--spawn] [--out PATH]\n\
         \x20       servebench --check PATH   (validate an existing BENCH_serve.json)"
    );
    exit(2)
}

fn main() {
    let mut cfg = SweepConfig::default();
    let mut out = std::path::PathBuf::from("BENCH_serve.json");
    let mut check: Option<std::path::PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--spawn" {
            cfg.spawn = true;
            continue;
        }
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scale" => cfg.scale = value().parse().unwrap_or_else(|_| usage()),
            "--edge-factor" => cfg.edge_factor = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => {
                cfg.workers = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--rates" => cfg.rates = parse_rate_list(&value()).unwrap_or_else(|| usage()),
            "--requests" => {
                cfg.requests = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--bursts" => cfg.bursts = parse_thread_list(&value()).unwrap_or_else(|| usage()),
            "--out" => out = std::path::PathBuf::from(value()),
            "--check" => check = Some(std::path::PathBuf::from(value())),
            _ => usage(),
        }
    }

    // Validation mode: no measurement, just the schema gate CI relies on.
    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(1);
            }
        };
        match serve::check_schema(&text) {
            Ok(()) => {
                println!("{}: schema ok ({})", path.display(), serve::SCHEMA_VERSION);
                return;
            }
            Err(e) => {
                eprintln!("{}: schema drift: {e}", path.display());
                exit(1);
            }
        }
    }

    let rows = match serve::run_sweep(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    println!(
        "{:>6} {:>12} {:>9} {:>7} {:>9} {:>12} {:>10} {:>10} {:>8}",
        "mode",
        "offered_rps",
        "requests",
        "errors",
        "secs",
        "achieved_rps",
        "p50 (ms)",
        "p99 (ms)",
        "max_conn"
    );
    for r in &rows {
        println!(
            "{:>6} {:>12.0} {:>9} {:>7} {:>9.3} {:>12.0} {:>10.3} {:>10.3} {:>8}",
            r.mode,
            r.offered_rps,
            r.requests,
            r.errors,
            r.seconds,
            r.achieved_rps,
            r.p50_ms,
            r.p99_ms,
            r.max_concurrent
        );
    }

    let json = serve::to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1);
    }
    println!("wrote {}", out.display());
}
