//! Regenerates the paper's Table I (source lines of code per
//! implementation), counted over this repository's backend variants.
//!
//! ```text
//! cargo run -p ppbench-bench --bin table1
//! ```

use std::path::PathBuf;

use ppbench_bench::sloc;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let backends = match sloc::backend_sloc(&root) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("failed to count SLOC under {}: {e}", root.display());
            std::process::exit(1);
        }
    };
    println!("TABLE I. SOURCE LINES OF CODE (backend kernel implementations)\n");
    print!("{}", sloc::render_table1(&backends));
    println!("\n(paper: C++ 494, Python 162, Pandas 162, Matlab 102, Octave 102, Julia 162)");
    println!("\nSubstrate modules standing in for each style's \"language runtime\"");
    println!("(the paper's C++ count is large because C++ has no runtime to lean on):\n");
    match sloc::substrate_sloc(&root) {
        Ok(rows) => print!("{}", sloc::render_table1(&rows)),
        Err(e) => {
            eprintln!("failed to count substrate SLOC: {e}");
            std::process::exit(1);
        }
    }
}
