//! Regenerates the paper's Figures 4–7: per-kernel throughput (edges per
//! second) versus number of edges, one series per implementation variant.
//!
//! ```text
//! cargo run --release -p ppbench-bench --bin figures -- \
//!     [--kernel 0|1|2|3|all] [--scales lo:hi] [--edge-factor K] \
//!     [--variants opt,naive,df,par] [--csv out.csv] [--seed N] [--files N]
//! ```
//!
//! Defaults run all four kernels over scales 16:20 for all variants (the
//! paper sweeps 16:22; pass `--scales 16:22` on a machine with ≥4 GB free
//! and some patience for the naive backend).

use std::process::exit;

use ppbench_bench::{parse_scale_range, plot, sweep};
use ppbench_core::Variant;

struct Args {
    kernels: Vec<usize>,
    cfg: sweep::SweepConfig,
    csv_path: Option<String>,
    model: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: figures [--kernel 0|1|2|3|all] [--scales lo:hi] [--edge-factor K]\n\
         \x20              [--variants a,b,...] [--csv out.csv] [--seed N] [--files N] [--model]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut kernels = vec![0, 1, 2, 3];
    let mut cfg = sweep::SweepConfig {
        scales: (16..=20).collect(),
        ..Default::default()
    };
    let mut csv_path = None;
    let mut model = false;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--kernel" => {
                let v = value();
                kernels = match v.as_str() {
                    "all" => vec![0, 1, 2, 3],
                    k => vec![k
                        .parse()
                        .ok()
                        .filter(|&k: &usize| k < 4)
                        .unwrap_or_else(|| usage())],
                };
            }
            "--scales" => {
                cfg.scales = parse_scale_range(&value())
                    .unwrap_or_else(|| usage())
                    .collect();
            }
            "--edge-factor" => cfg.edge_factor = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--files" => cfg.num_files = value().parse().unwrap_or_else(|_| usage()),
            "--variants" => {
                cfg.variants = value()
                    .split(',')
                    .map(|s| Variant::parse(s).unwrap_or_else(|| usage()))
                    .collect();
            }
            "--csv" => csv_path = Some(value()),
            "--model" => model = true,
            _ => usage(),
        }
    }
    Args {
        kernels,
        cfg,
        csv_path,
        model,
    }
}

const KERNEL_TITLES: [&str; 4] = [
    "Figure 4: Kernel 0 (generate + write) — untimed in the official metric",
    "Figure 5: Kernel 1 (sort) — edges sorted per second",
    "Figure 6: Kernel 2 (filter) — edges prepared per second",
    "Figure 7: Kernel 3 (PageRank) — edges processed per second (20 iterations)",
];

/// Prints predicted (calibrated hardware model) vs measured rates for the
/// optimized backend — the paper's §V "performance predictions" study.
fn print_model_comparison(args: &Args, points: &[sweep::SweepPoint]) {
    use ppbench_core::model;
    use ppbench_gen::GraphSpec;
    eprintln!("calibrating hardware model...");
    let hw = model::HardwareModel::calibrate();
    println!("\nHardware model (calibrated):");
    println!(
        "  stream {:9.3e} B/s   parse  {:9.3e} B/s   format {:9.3e} B/s",
        hw.stream_bytes_per_s, hw.parse_bytes_per_s, hw.format_bytes_per_s
    );
    println!(
        "  random {:9.3e} acc/s storage-write {:9.3e} B/s",
        hw.random_access_per_s, hw.storage_write_bytes_per_s
    );
    println!("\nModel vs measured (optimized backend, edges/s):");
    println!(
        "  {:>5} {:>3} {:>12} {:>12} {:>7}  model-dominant-phase",
        "scale", "K", "predicted", "measured", "ratio"
    );
    for p in points
        .iter()
        .filter(|p| p.variant == ppbench_core::Variant::Optimized)
    {
        let spec = GraphSpec::new(p.scale, args.cfg.edge_factor);
        let nnz = 0.8 * p.edges as f64;
        let preds = model::predict_all(&spec, nnz, 20, &hw);
        for (k, pred) in preds.iter().enumerate() {
            let measured = p.rates[k];
            println!(
                "  {:>5} {:>3} {:>12.3e} {:>12.3e} {:>7.2}  {}",
                p.scale,
                k,
                pred.edges_per_second,
                measured,
                measured / pred.edges_per_second,
                pred.dominant()
            );
        }
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "sweep: scales {:?}, variants {:?}, k={}",
        args.cfg.scales,
        args.cfg
            .variants
            .iter()
            .map(|v| v.name())
            .collect::<Vec<_>>(),
        args.cfg.edge_factor
    );
    let points = match sweep::run_sweep_in_temp(&args.cfg, |p| {
        eprintln!(
            "  scale {:2} {:<10} K0 {:9.3e}  K1 {:9.3e}  K2 {:9.3e}  K3 {:9.3e} edges/s",
            p.scale,
            p.variant.name(),
            p.rates[0],
            p.rates[1],
            p.rates[2],
            p.rates[3]
        );
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    if let Some(path) = &args.csv_path {
        if let Err(e) = std::fs::write(path, sweep::to_csv(&points)) {
            eprintln!("failed to write {path}: {e}");
            exit(1);
        }
        eprintln!("wrote {path}");
    }

    if args.model {
        print_model_comparison(&args, &points);
    }

    for &kernel in &args.kernels {
        let series = sweep::kernel_series(&points, kernel);
        println!("\n{}", KERNEL_TITLES[kernel]);
        println!("{}", "=".repeat(KERNEL_TITLES[kernel].len()));
        print!("{}", plot::loglog(&series, 64, 16));
        // Numeric table under the plot for exact reading.
        println!("\n  {:<12} {:>12} {:>14}", "variant", "edges", "edges/sec");
        for (label, pts) in &series {
            for &(x, y) in pts {
                println!("  {label:<12} {x:>12.0} {y:>14.1}");
            }
        }
    }
}
