//! Command-line entry point for a single benchmark run.
//!
//! ```text
//! cargo run --release -p ppbench-bench --bin pprank -- \
//!     [--scale S] [--edge-factor K] [--seed N] [--files N] \
//!     [--variant optimized|naive|dataframe|parallel] \
//!     [--generator kronecker|ppl|erdos-renyi] [--gen faithful|linear] \
//!     [--workload pagerank|bfs|cc|sssp|tc] [--input-tsv PATH] \
//!     [--sort-end] [--fused] [--diagonal] [--budget BYTES] \
//!     [--validate none|invariants|eigen] [--dir PATH] [--keep] [--top K]
//! ```
//!
//! Runs all four kernels, prints per-kernel timings in the paper's
//! edges/second metric, validation results, and the top-ranked vertices.

use std::path::PathBuf;
use std::process::exit;

use ppbench_core::kernel3::DanglingStrategy;
use ppbench_core::{Pipeline, PipelineConfig, ValidationLevel, Variant, Workload};
use ppbench_dist::{run_distributed, DistConfig};
use ppbench_gen::{GeneratorKind, RmatSampler};

fn usage() -> ! {
    eprintln!(
        "usage: pprank [--scale S] [--edge-factor K] [--seed N] [--files N]\n\
         \x20             [--variant NAME] [--generator NAME] [--gen faithful|linear]\n\
         \x20             [--sort-end] [--fused]\n\
         \x20             [--diagonal]\n\
         \x20             [--workload pagerank|bfs|cc|sssp|tc] [--input-tsv PATH]\n\
         \x20             [--budget BYTES] [--validate none|invariants|eigen]\n\
         \x20             [--dangling omit|redistribute|sink] [--converge TOL]\n\
         \x20             [--iterations N] [--damping C] [--dir PATH] [--keep] [--top K]\n\
         \x20             [--workers W   (simulated distributed mode)] [--report PATH]\n\
         \x20             [--threads N   (size the rayon pool; recorded in the run record)]\n\
         \x20             [--json        (machine-readable run record on stdout)]"
    );
    exit(2)
}

fn main() {
    let mut builder = PipelineConfig::builder().scale(14);
    let mut dir: Option<PathBuf> = None;
    let mut keep = false;
    let mut top = 5usize;
    let mut workers: Option<usize> = None;
    let mut report: Option<PathBuf> = None;
    let mut json = false;
    let mut threads: Option<u64> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        builder = match flag.as_str() {
            "--scale" => builder.scale(value().parse().unwrap_or_else(|_| usage())),
            "--edge-factor" => builder.edge_factor(value().parse().unwrap_or_else(|_| usage())),
            "--seed" => builder.seed(value().parse().unwrap_or_else(|_| usage())),
            "--files" => builder.num_files(value().parse().unwrap_or_else(|_| usage())),
            "--variant" => builder.variant(Variant::parse(&value()).unwrap_or_else(|| usage())),
            "--gen" => builder.gen(RmatSampler::parse(&value()).unwrap_or_else(|| usage())),
            "--generator" => {
                builder.generator(GeneratorKind::parse(&value()).unwrap_or_else(|| usage()))
            }
            "--sort-end" => builder.sort_key(ppbench_sort::SortKey::StartEnd),
            "--fused" => builder.fused(true),
            "--workload" => builder.workload(Workload::parse(&value()).unwrap_or_else(|| usage())),
            "--input-tsv" => builder.input_tsv(PathBuf::from(value())),
            "--dangling" => {
                builder.dangling(DanglingStrategy::parse(&value()).unwrap_or_else(|| usage()))
            }
            "--converge" => {
                builder.convergence_tolerance(value().parse().unwrap_or_else(|_| usage()))
            }
            "--iterations" => builder.iterations(value().parse().unwrap_or_else(|_| usage())),
            "--damping" => builder.damping(value().parse().unwrap_or_else(|_| usage())),
            "--diagonal" => builder.add_diagonal_to_empty(true),
            "--budget" => builder.sort_budget_bytes(value().parse().unwrap_or_else(|_| usage())),
            "--validate" => builder.validation(match value().as_str() {
                "none" => ValidationLevel::None,
                "invariants" => ValidationLevel::Invariants,
                "eigen" => ValidationLevel::Eigenvector,
                _ => usage(),
            }),
            "--dir" => {
                dir = Some(PathBuf::from(value()));
                builder
            }
            "--keep" => {
                keep = true;
                builder
            }
            "--top" => {
                top = value().parse().unwrap_or_else(|_| usage());
                builder
            }
            "--workers" => {
                workers = Some(value().parse().unwrap_or_else(|_| usage()));
                builder
            }
            "--report" => {
                report = Some(PathBuf::from(value()));
                builder
            }
            "--threads" => {
                threads = Some(
                    value()
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                );
                builder
            }
            "--json" => {
                json = true;
                builder
            }
            _ => usage(),
        };
    }
    let cfg = builder.build();

    // Size the global rayon pool before any parallel stage runs, so every
    // kernel of this process uses exactly the requested worker count and
    // the recorded number is what actually ran.
    if let Some(n) = threads {
        if let Err(e) = rayon::ThreadPoolBuilder::new()
            .num_threads(n as usize)
            .build_global()
        {
            eprintln!("failed to size the thread pool to {n}: {e}");
            exit(1);
        }
    }

    // Distributed mode: run the simulated cluster, report communication
    // volume, and exit (no kernel files are produced).
    if let Some(workers) = workers {
        let out = run_distributed(&DistConfig {
            pipeline: cfg.clone(),
            workers,
        });
        println!("distributed run on {workers} workers: {}", cfg.describe());
        let mb = |b: u64| b as f64 / 1e6;
        println!(
            "  K1 shuffle traffic:     {:10.2} MB ({} messages)",
            mb(out.comm_k1.bytes),
            out.comm_k1.messages
        );
        println!(
            "  K2 aggregation traffic: {:10.2} MB ({} messages)",
            mb(out.comm_k2.bytes),
            out.comm_k2.messages
        );
        println!(
            "  K3 reduction traffic:   {:10.2} MB ({} messages)",
            mb(out.comm_k3.bytes),
            out.comm_k3.messages
        );
        println!("  global nnz after filter: {}", out.nnz_after);
        let mut pairs: Vec<(u64, f64)> = out
            .ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u64, r))
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        println!("  top {top} vertices by rank:");
        for (v, r) in pairs.into_iter().take(top) {
            println!("    vertex {v:>10}  rank {r:.6e}");
        }
        return;
    }

    let (work_dir, ephemeral) = match dir {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("pprank-{}", std::process::id())),
            true,
        ),
    };

    let result = match Pipeline::new(cfg.clone(), &work_dir).run() {
        Ok(r) => r,
        Err(e) => {
            if json {
                // Machine-readable failure on stdout, mirroring the
                // success shape's `record` tag; detail stays on stderr.
                // Same canonical writer as the success path, so scripts
                // see one spelling of the failure shape too.
                let mut failure = ppbench_core::json::JsonObject::new();
                failure
                    .set_str("record", "ppbench-run-v1")
                    .set_str("error", &e.to_string());
                println!("{}", failure.render());
            }
            eprintln!("pipeline failed: {e}");
            exit(1);
        }
    };
    let mut record = ppbench_core::RunRecord::from_result(&result);
    record.threads = threads;
    if json {
        println!("{}", record.to_json());
    } else {
        print!("{}", result.summary());
    }
    if let Some(path) = &report {
        if let Err(e) = record.save(path) {
            eprintln!("failed to write report {}: {e}", path.display());
            exit(1);
        }
        if !json {
            println!("run record written to {}", path.display());
        }
    }
    if !json {
        if let Some(k3) = &result.kernel3 {
            if k3.iterations < cfg.iterations {
                println!(
                    "converged after {} iterations (final L1 delta {:.2e})",
                    k3.iterations, k3.final_delta
                );
            }
            println!("top {top} vertices by rank:");
            for (v, r) in k3.top_k(top) {
                println!("  vertex {v:>10}  rank {r:.6e}");
            }
        }
        if let Some(a) = &result.algo {
            println!(
                "{} result: {} {} (checksum {:016x}{})",
                a.workload,
                a.stat,
                a.stat_name,
                a.checksum,
                a.source
                    .map(|s| format!(", source vertex {s}"))
                    .unwrap_or_default()
            );
        }
        if let Some(v) = &result.validation {
            println!("\nvalidation detail:\n{}", v.detail());
        }
    }

    if ephemeral && !keep {
        // ppbench: allow(discarded-result, reason = "best-effort cleanup of the ephemeral work dir; the run already reported")
        let _ = std::fs::remove_dir_all(&work_dir);
    } else if !json {
        println!("\nkernel files kept under {}", work_dir.display());
    }

    // A run whose validation failed is not a benchmark result; make that
    // visible to scripts in both output modes.
    if record.validation_passed == Some(false) {
        eprintln!("validation FAILED");
        exit(1);
    }
}
