//! Regenerates the paper's Table II (benchmark run sizes).
//!
//! ```text
//! cargo run -p ppbench-bench --bin table2 [lo:hi]
//! ```

use ppbench_core::table;

fn main() {
    let range = std::env::args()
        .nth(1)
        .and_then(|s| ppbench_bench::parse_scale_range(&s))
        .unwrap_or(16..=22);
    println!("TABLE II. BENCHMARK RUN SIZES");
    println!(
        "(memory at {} bytes/edge, decimal units — matches the paper's printed column)\n",
        table::TABLE2_BYTES_PER_EDGE
    );
    print!("{}", table::render_table2(range));
}
