//! Kernel-3 microbench driver.
//!
//! ```text
//! cargo run --release -p ppbench-bench --bin k3bench -- \
//!     [--scales LO:HI] [--threads 1,2,4,8] [--edge-factor K] [--seed N] \
//!     [--iterations N] [--damping C] [--out PATH]
//! cargo run -p ppbench-bench --bin k3bench -- --check BENCH_k3.json
//! ```
//!
//! Sweeps the kernel-3 SpMV variants (scatter, gather, parallel gather,
//! nnz-balanced fused with wide and narrow indices) over explicit thread
//! counts and scales, prints a human-readable table, and writes the
//! canonical-JSON trajectory file. `--check` validates an existing file
//! against the expected schema and exits nonzero on drift.

use std::process::exit;

use ppbench_bench::k3::{self, SweepConfig};

fn usage() -> ! {
    eprintln!(
        "usage: k3bench [--scales LO:HI] [--threads N,N,...] [--edge-factor K]\n\
         \x20              [--seed N] [--iterations N] [--damping C] [--out PATH]\n\
         \x20       k3bench --check PATH   (validate an existing BENCH_k3.json)"
    );
    exit(2)
}

fn main() {
    let mut cfg = SweepConfig::default();
    let mut out = std::path::PathBuf::from("BENCH_k3.json");
    let mut check: Option<std::path::PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scales" => {
                cfg.scales = ppbench_bench::parse_scale_range(&value())
                    .unwrap_or_else(|| usage())
                    .collect();
            }
            "--threads" => {
                cfg.threads = k3::parse_thread_list(&value()).unwrap_or_else(|| usage());
            }
            "--edge-factor" => cfg.edge_factor = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--iterations" => {
                cfg.iterations = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--damping" => cfg.damping = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out = std::path::PathBuf::from(value()),
            "--check" => check = Some(std::path::PathBuf::from(value())),
            _ => usage(),
        }
    }

    // Validation mode: no measurement, just the schema gate CI relies on.
    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(1);
            }
        };
        match k3::check_schema(&text) {
            Ok(()) => {
                println!("{}: schema ok ({})", path.display(), k3::SCHEMA_VERSION);
                return;
            }
            Err(e) => {
                eprintln!("{}: schema drift: {e}", path.display());
                exit(1);
            }
        }
    }

    let rows = match k3::run_sweep(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    println!(
        "{:>5} {:>20} {:>7} {:>12} {:>12} {:>10} {:>9} {:>12}",
        "scale", "variant", "threads", "vertices", "nnz", "seconds", "GFLOPs", "L1 vs serial"
    );
    for r in &rows {
        println!(
            "{:>5} {:>20} {:>7} {:>12} {:>12} {:>10.4} {:>9.4} {:>12.3e}",
            r.scale, r.variant, r.threads, r.vertices, r.nnz, r.seconds, r.gflops, r.l1_vs_serial
        );
    }

    let json = k3::to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1);
    }
    println!("wrote {}", out.display());
}
