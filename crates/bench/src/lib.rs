//! Evaluation harness for the PageRank Pipeline Benchmark.
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Artifact | Binary | Library pieces |
//! |---|---|---|
//! | Table I (source lines of code) | `table1` | [`sloc`] |
//! | Table II (run sizes) | `table2` | `ppbench_core::table` |
//! | Figures 4–7 (kernel throughput vs. edges, per variant) | `figures` | [`sweep`], [`plot`] |
//!
//! plus Criterion microbenches (`cargo bench`) for each kernel and the
//! ablations DESIGN.md calls out (sort algorithm, SpMV form, generator,
//! file count), the kernel-3 variant sweep (`k3bench` / [`k3`]) that
//! produces `BENCH_k3.json`, the K0→K1 front-end sweep (`k01bench` /
//! [`k01`]) that produces `BENCH_k01.json`, the analytics-workload
//! sweep (`algobench` / [`algo`]) that produces `BENCH_algo.json`, and
//! the staged-vs-fused end-to-end pipeline sweep (`pipebench` / [`pipe`])
//! that produces `BENCH_pipeline.json`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod algo;
pub mod k01;
pub mod k3;
pub mod pipe;
pub mod plot;
mod schema;
pub mod sloc;
pub mod sweep;

/// Parses a `lo:hi` (inclusive) scale-range CLI argument.
pub fn parse_scale_range(s: &str) -> Option<std::ops::RangeInclusive<u32>> {
    let (lo, hi) = s.split_once(':')?;
    let lo: u32 = lo.parse().ok()?;
    let hi: u32 = hi.parse().ok()?;
    if lo > hi || hi > 40 {
        return None;
    }
    Some(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_range_parses() {
        assert_eq!(parse_scale_range("16:22"), Some(16..=22));
        assert_eq!(parse_scale_range("5:5"), Some(5..=5));
        assert_eq!(parse_scale_range("9:4"), None);
        assert_eq!(parse_scale_range("junk"), None);
        assert_eq!(parse_scale_range("1:99"), None);
    }
}
