//! Evaluation harness for the PageRank Pipeline Benchmark.
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Artifact | Binary | Library pieces |
//! |---|---|---|
//! | Table I (source lines of code) | `table1` | [`sloc`] |
//! | Table II (run sizes) | `table2` | `ppbench_core::table` |
//! | Figures 4–7 (kernel throughput vs. edges, per variant) | `figures` | [`sweep`], [`plot`] |
//!
//! plus Criterion microbenches (`cargo bench`) for each kernel and the
//! ablations DESIGN.md calls out (sort algorithm, SpMV form, generator,
//! file count), the kernel-3 variant sweep (`k3bench` / [`k3`]) that
//! produces `BENCH_k3.json`, the K0→K1 front-end sweep (`k01bench` /
//! [`k01`]) that produces `BENCH_k01.json`, the analytics-workload
//! sweep (`algobench` / [`algo`]) that produces `BENCH_algo.json`, the
//! staged-vs-fused end-to-end pipeline sweep (`pipebench` / [`pipe`])
//! that produces `BENCH_pipeline.json`, and the serving-layer
//! latency/saturation sweep (`servebench` / [`serve`]) that produces
//! `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod algo;
pub mod k01;
pub mod k3;
pub mod pipe;
pub mod plot;
mod schema;
pub mod serve;
pub mod sloc;
pub mod sweep;

/// Parses a `lo:hi` (inclusive) scale-range CLI argument.
pub fn parse_scale_range(s: &str) -> Option<std::ops::RangeInclusive<u32>> {
    let (lo, hi) = s.split_once(':')?;
    let lo: u32 = lo.parse().ok()?;
    let hi: u32 = hi.parse().ok()?;
    if lo > hi || hi > 40 {
        return None;
    }
    Some(lo..=hi)
}

/// Parses a scale-list CLI argument: comma-separated entries, each either
/// a single scale (`22`) or an inclusive `lo:hi` range (`16:20`), e.g.
/// `16:18,22,24`. Sparse lists let a sweep mix a dense comparison band
/// with isolated stress points.
pub fn parse_scale_list(s: &str) -> Option<Vec<u32>> {
    let mut scales = Vec::new();
    for part in s.split(',') {
        if part.contains(':') {
            scales.extend(parse_scale_range(part)?);
        } else {
            let v: u32 = part.parse().ok()?;
            if v > 40 {
                return None;
            }
            scales.push(v);
        }
    }
    if scales.is_empty() {
        return None;
    }
    Some(scales)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_range_parses() {
        assert_eq!(parse_scale_range("16:22"), Some(16..=22));
        assert_eq!(parse_scale_range("5:5"), Some(5..=5));
        assert_eq!(parse_scale_range("9:4"), None);
        assert_eq!(parse_scale_range("junk"), None);
        assert_eq!(parse_scale_range("1:99"), None);
    }

    #[test]
    fn scale_list_parses_singles_ranges_and_mixes() {
        assert_eq!(parse_scale_list("22"), Some(vec![22]));
        assert_eq!(parse_scale_list("16:18"), Some(vec![16, 17, 18]));
        assert_eq!(
            parse_scale_list("16:18,22,24"),
            Some(vec![16, 17, 18, 22, 24])
        );
        assert_eq!(parse_scale_list("junk"), None);
        assert_eq!(parse_scale_list("5,99"), None);
        assert_eq!(parse_scale_list("9:4"), None);
        assert_eq!(parse_scale_list(""), None);
    }
}
