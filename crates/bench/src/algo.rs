//! Analytics-workload microbench: workload × implementation × thread
//! count × scale.
//!
//! The GAP Benchmark Suite's case is that one analytic measures one
//! data-access pattern; `ppbench-algo` adds four more, and this module
//! measures them the way [`crate::k3`] measures the SpMV variants. Every
//! point runs on the same normalized kernel-2 matrix the pipeline would
//! produce (built once per scale), each workload's serial oracle runs
//! first as the accuracy reference, and the optimized kernel is swept
//! over explicit thread counts. Because the algo kernels are
//! bit-deterministic, the comparison against serial is exact equality of
//! the output vectors, not a tolerance. Results land in
//! `BENCH_algo.json`; `--check` re-validates that file's schema so CI
//! catches drift.

use ppbench_core::json::{JsonArray, JsonObject};
use ppbench_core::workload::{self, Workload};
use ppbench_core::{PipelineConfig, Stopwatch, Variant};

/// Version tag written into the JSON so schema changes are explicit.
pub const SCHEMA_VERSION: &str = "ppbench-algo-v1";

/// Top-level keys of the benchmark file, sorted (canonical order).
pub const TOP_KEYS: &[&str] = &["benchmark", "edge_factor", "results", "seed"];

/// Keys of each result row, sorted (canonical order).
pub const ROW_KEYS: &[&str] = &[
    "checksum",
    "edges",
    "impl",
    "matches_serial",
    "meps",
    "scale",
    "seconds",
    "stat",
    "threads",
    "vertices",
    "workload",
];

/// The analytics workloads under measurement (every workload except
/// PageRank, which `k3bench` covers on its own axis).
pub const ALGO_WORKLOADS: [Workload; 4] =
    [Workload::Bfs, Workload::Cc, Workload::Sssp, Workload::Tc];

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Graph scales (vertices = 2^scale).
    pub scales: Vec<u32>,
    /// Thread counts for the optimized implementations.
    pub threads: Vec<usize>,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Master seed for generation, weights, and source selection.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            scales: vec![12],
            threads: vec![1, 2, 4, 8],
            edge_factor: 16,
            seed: 1,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Workload name (see [`Workload::name`]).
    pub workload: &'static str,
    /// `"serial"` (the oracle) or `"optimized"`.
    pub impl_name: &'static str,
    /// Graph scale.
    pub scale: u32,
    /// Thread count the pool was sized to (1 for the serial oracle).
    pub threads: usize,
    /// Vertex count.
    pub vertices: u64,
    /// Directed edges in the adjacency pattern (the work-item count).
    pub edges: u64,
    /// Wall-clock seconds for the workload kernel alone.
    pub seconds: f64,
    /// Millions of edges per second — the paper's throughput unit.
    pub meps: f64,
    /// Headline statistic (reached / components / triangles).
    pub stat: u64,
    /// FNV-1a fingerprint of the output vector.
    pub checksum: u64,
    /// Whether the output vector equals the serial oracle's, bit for bit.
    pub matches_serial: bool,
}

/// Runs the full sweep. Per scale, the kernel-2 matrix is built once;
/// per workload, the serial oracle runs first (at one thread) as both a
/// measurement and the equality reference, then the optimized kernel
/// runs once per requested thread count. Row order is deterministic:
/// scale-major, then [`ALGO_WORKLOADS`] order, serial before optimized,
/// then thread order as given.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    let mut rows = Vec::new();
    for &scale in &cfg.scales {
        let matrix = crate::k3::build_matrix(scale, cfg.edge_factor, cfg.seed);
        for w in ALGO_WORKLOADS {
            let pipeline_cfg = |variant: Variant| {
                PipelineConfig::builder()
                    .scale(scale)
                    .edge_factor(cfg.edge_factor)
                    .seed(cfg.seed)
                    .workload(w)
                    .variant(variant)
                    .build()
            };
            crate::k3::size_pool(1)?;
            let serial_cfg = pipeline_cfg(Variant::Naive);
            let sw = Stopwatch::start();
            let serial = workload::run_algo(&serial_cfg, &matrix).map_err(|e| e.to_string())?;
            let serial_secs = sw.elapsed_secs();
            rows.push(SweepRow {
                workload: w.name(),
                impl_name: "serial",
                scale,
                threads: 1,
                vertices: matrix.rows(),
                edges: serial.work_items,
                seconds: serial_secs,
                meps: serial.work_items as f64 / serial_secs.max(1e-15) / 1e6,
                stat: serial.stat,
                checksum: serial.checksum,
                matches_serial: true,
            });
            let opt_cfg = pipeline_cfg(Variant::Optimized);
            for &threads in &cfg.threads {
                crate::k3::size_pool(threads)?;
                let sw = Stopwatch::start();
                let out = workload::run_algo(&opt_cfg, &matrix).map_err(|e| e.to_string())?;
                let seconds = sw.elapsed_secs();
                rows.push(SweepRow {
                    workload: w.name(),
                    impl_name: "optimized",
                    scale,
                    threads,
                    vertices: matrix.rows(),
                    edges: out.work_items,
                    seconds,
                    meps: out.work_items as f64 / seconds.max(1e-15) / 1e6,
                    stat: out.stat,
                    checksum: out.checksum,
                    matches_serial: out.values == serial.values,
                });
            }
        }
        // Leave the pool unpinned for whatever runs next in this process.
        crate::k3::size_pool(0)?;
    }
    Ok(rows)
}

/// Renders the sweep as the canonical `BENCH_algo.json` document.
pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_str("workload", row.workload)
            .set_str("impl", row.impl_name)
            .set_u64("scale", u64::from(row.scale))
            .set_u64("threads", row.threads as u64)
            .set_u64("vertices", row.vertices)
            .set_u64("edges", row.edges)
            .set_f64("seconds", row.seconds)
            .set_f64("meps", row.meps)
            .set_u64("stat", row.stat)
            .set_str("checksum", &format!("{:016x}", row.checksum))
            .set_bool("matches_serial", row.matches_serial);
        results.push_obj(&entry);
    }
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", SCHEMA_VERSION)
        .set_u64("edge_factor", cfg.edge_factor)
        .set_raw("results", results.render())
        .set_u64("seed", cfg.seed);
    obj.render()
}

/// Validates a `BENCH_algo.json` document against the expected schema:
/// correct version tag, exactly [`TOP_KEYS`] at the top level, at least
/// one result row, and exactly [`ROW_KEYS`] on every row. Fails on drift
/// in either direction (missing *or* extra keys).
pub fn check_schema(text: &str) -> Result<(), String> {
    crate::schema::check_flat_schema(text, SCHEMA_VERSION, TOP_KEYS, ROW_KEYS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scales: vec![7],
            threads: vec![1, 2],
            edge_factor: 8,
            seed: 7,
        }
    }

    #[test]
    fn sweep_covers_every_workload_and_matches_serial() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        // 4 workloads × (1 serial + 2 optimized thread counts).
        assert_eq!(rows.len(), 4 * 3);
        for w in ALGO_WORKLOADS {
            assert!(
                rows.iter().any(|r| r.workload == w.name()),
                "missing {}",
                w.name()
            );
        }
        for row in &rows {
            assert!(row.matches_serial, "{row:?} diverged from its oracle");
            assert!(row.meps > 0.0, "{row:?}");
            assert!(row.edges > 0, "{row:?}");
        }
        // Serial and optimized fingerprints agree per workload.
        for w in ALGO_WORKLOADS {
            let sums: Vec<u64> = rows
                .iter()
                .filter(|r| r.workload == w.name())
                .map(|r| r.checksum)
                .collect();
            assert!(
                sums.windows(2).all(|p| p[0] == p[1]),
                "{} checksums vary: {sums:?}",
                w.name()
            );
        }
    }

    #[test]
    fn json_roundtrip_passes_schema_check() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        check_schema(&json).unwrap();
    }

    #[test]
    fn schema_check_rejects_drift_in_both_directions() {
        let cfg = tiny_cfg();
        let rows = run_sweep(&cfg).unwrap();
        let json = to_json(&cfg, &rows);
        // Missing row key.
        let missing = json.replacen("\"meps\":", "\"mepz\":", 1);
        assert!(check_schema(&missing).is_err());
        // Extra top-level key.
        let extra = json.replacen("{\"benchmark\"", "{\"bonus\":1,\"benchmark\"", 1);
        assert!(check_schema(&extra).is_err());
        // Wrong version tag.
        let wrong = json.replace(SCHEMA_VERSION, "ppbench-algo-v9");
        assert!(check_schema(&wrong).is_err());
        // Empty results.
        assert!(check_schema(&to_json(&cfg, &[])).is_err());
    }
}
