//! Source-lines-of-code counting — the reproduction of Table I.
//!
//! The paper's Table I reports the size of each language implementation of
//! the same benchmark spec (C++ 494 lines, Python 162, Matlab 102, …). Our
//! analogue counts the kernel implementation of each backend variant. The
//! counter uses the same convention SLOC tools apply to the paper's
//! languages: physical lines that are neither blank nor comment-only.

use std::path::Path;

/// Counts source lines in Rust text: non-blank lines that are not entirely
/// a `//` comment and not inside a `/* … */` block. Test modules
/// (`#[cfg(test)] mod tests { … }` to end of file, the layout this
/// workspace uses) are excluded — Table I counted benchmark code, not test
/// code.
pub fn count_rust_sloc(text: &str) -> usize {
    let mut count = 0;
    let mut in_block_comment = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if in_block_comment {
            if trimmed.contains("*/") {
                in_block_comment = false;
                let after = trimmed.split_once("*/").map(|x| x.1.trim()).unwrap_or("");
                if !after.is_empty() && !after.starts_with("//") {
                    count += 1;
                }
            }
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        if let Some((before, after)) = trimmed.split_once("/*") {
            // Block comment opening; count the line if code precedes it.
            if !after.contains("*/") {
                in_block_comment = true;
            }
            if !before.trim().is_empty() {
                count += 1;
            }
            continue;
        }
        count += 1;
    }
    count
}

/// Counts SLOC of a file on disk.
pub fn count_file(path: &Path) -> std::io::Result<usize> {
    Ok(count_rust_sloc(&std::fs::read_to_string(path)?))
}

/// One Table I row: a variant and the SLOC of the files implementing it.
#[derive(Debug, Clone)]
pub struct SlocRow {
    /// Variant name.
    pub variant: String,
    /// Total source lines across its files.
    pub sloc: usize,
    /// The files counted.
    pub files: Vec<String>,
}

/// Builds Table I rows for the four backend implementations, given the
/// repository root.
pub fn backend_sloc(repo_root: &Path) -> std::io::Result<Vec<SlocRow>> {
    let backend_dir = repo_root.join("crates/core/src/backend");
    let variants = [
        ("optimized (C++-style)", vec!["optimized.rs"]),
        ("naive (Python-style)", vec!["naive.rs"]),
        ("dataframe (Pandas-style)", vec!["dataframe.rs"]),
        ("parallel (future work)", vec!["parallel.rs"]),
        ("graphblas (§V reference)", vec!["graphblas_backend.rs"]),
    ];
    let mut rows = Vec::new();
    for (name, files) in variants {
        let mut total = 0;
        let mut counted = Vec::new();
        for f in files {
            let path = backend_dir.join(f);
            total += count_file(&path)?;
            counted.push(f.to_string());
        }
        rows.push(SlocRow {
            variant: name.to_string(),
            sloc: total,
            files: counted,
        });
    }
    Ok(rows)
}

/// Renders the rows in the paper's Table I shape.
pub fn render_table1(rows: &[SlocRow]) -> String {
    let mut out = String::from("Implementation               Source Lines of Code\n");
    for row in rows {
        out.push_str(&format!("{:<28} {}\n", row.variant, row.sloc));
    }
    out
}

/// The substrate modules each execution style leans on — the analogue of
/// the paper's "language runtime" (numpy for Python, the sparse built-ins
/// for Matlab). The paper's C++ count is large because C++ has no runtime
/// to lean on; in this workspace that code lives in the substrate crates,
/// so a fair Table I comparison attributes it back to the styles using it.
pub fn substrate_sloc(repo_root: &Path) -> std::io::Result<Vec<SlocRow>> {
    let groups: [(&str, &[&str]); 4] = [
        (
            "fast text + files (used by optimized/parallel)",
            &[
                "crates/io/src/atoi.rs",
                "crates/io/src/format.rs",
                "crates/io/src/writer.rs",
                "crates/io/src/reader.rs",
            ],
        ),
        (
            "radix + external sort (optimized)",
            &[
                "crates/sort/src/radix.rs",
                "crates/sort/src/external.rs",
                "crates/sort/src/kway.rs",
            ],
        ),
        (
            "sparse kernels (all styles)",
            &[
                "crates/sparse/src/csr.rs",
                "crates/sparse/src/coo.rs",
                "crates/sparse/src/ops.rs",
                "crates/sparse/src/spmv.rs",
            ],
        ),
        (
            "columnar dataframe (dataframe style)",
            &[
                "crates/frame/src/series.rs",
                "crates/frame/src/frame.rs",
                "crates/frame/src/tsv.rs",
            ],
        ),
    ];
    let mut rows = Vec::new();
    for (name, files) in groups {
        let mut total = 0;
        let mut counted = Vec::new();
        for f in files {
            total += count_file(&repo_root.join(f))?;
            counted.push((*f).to_string());
        }
        rows.push(SlocRow {
            variant: name.to_string(),
            sloc: total,
            files: counted,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_plain_code() {
        let text = "fn main() {\n    let x = 1;\n}\n";
        assert_eq!(count_rust_sloc(text), 3);
    }

    #[test]
    fn skips_blanks_and_line_comments() {
        let text = "// header\n\nfn f() {}\n   // indented comment\nlet y = 2; // trailing\n";
        assert_eq!(count_rust_sloc(text), 2);
    }

    #[test]
    fn skips_block_comments() {
        let text = "/* one\n two\n three */\nfn f() {}\n/* inline */ let x = 1;\n";
        // Line 4 is code; line 5 has code after an inline block comment —
        // our counter treats the "/* inline */ let x = 1;" opener line as
        // having no code before '/*', so only `fn f() {}` plus that line's
        // handling apply.
        let n = count_rust_sloc(text);
        assert!((1..=2).contains(&n), "got {n}");
    }

    #[test]
    fn stops_at_test_module() {
        let text = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        assert_eq!(count_rust_sloc(text), 1);
    }

    #[test]
    fn backend_rows_have_positive_counts() {
        // Walk up from the crate dir to the workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let rows = backend_sloc(&root).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.sloc > 20,
                "{} suspiciously small: {}",
                row.variant,
                row.sloc
            );
        }
        let table = render_table1(&rows);
        assert!(table.contains("naive"), "{table}");
    }
}
