//! ASCII log–log scatter plots, in the style of the paper's Figures 4–7
//! (edges per second vs. number of edges, one marker per variant).

/// A named series of (x, y) points.
pub type Series = (String, Vec<(f64, f64)>);

/// Marker characters assigned to series in order.
const MARKERS: &[char] = &['o', 'x', '+', '*', '#', '@', '%', '&'];

/// Renders series as an ASCII log–log plot of `width × height` characters
/// (plus axes and legend). Points with non-positive coordinates are
/// skipped (log axes).
pub fn loglog(series: &[Series], width: usize, height: usize) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|&(x, y)| x > 0.0 && y > 0.0)
        .collect();
    if pts.is_empty() {
        return "(no data)\n".to_string();
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_lo = x_lo.min(x.log10());
        x_hi = x_hi.max(x.log10());
        y_lo = y_lo.min(y.log10());
        y_hi = y_hi.max(y.log10());
    }
    // Pad degenerate ranges so a single point still renders.
    if (x_hi - x_lo).abs() < 1e-9 {
        x_lo -= 0.5;
        x_hi += 0.5;
    }
    if (y_hi - y_lo).abs() < 1e-9 {
        y_lo -= 0.5;
        y_hi += 0.5;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, points)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in points {
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let cx = ((x.log10() - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y.log10() - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            // Later series overwrite on collision; acceptable for a gist
            // plot.
            grid[row][cx] = marker;
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{:>9.2e} +{}\n",
        10f64.powf(y_hi),
        "-".repeat(width)
    ));
    for row in grid {
        out.push_str("          |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9.2e} +{}\n",
        10f64.powf(y_lo),
        "-".repeat(width)
    ));
    out.push_str(&format!(
        "           {:<.2e}{}{:>.2e}  (x: edges, y: edges/s, log-log)\n",
        10f64.powf(x_lo),
        " ".repeat(width.saturating_sub(16)),
        10f64.powf(x_hi),
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "           {} {}\n",
            MARKERS[si % MARKERS.len()],
            label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            ("fast".into(), vec![(1e6, 1e7), (1e7, 9e6), (1e8, 8e6)]),
            ("slow".into(), vec![(1e6, 1e5), (1e7, 1e5), (1e8, 9e4)]),
        ]
    }

    #[test]
    fn renders_markers_and_legend() {
        let plot = loglog(&sample(), 40, 10);
        assert!(plot.contains('o'), "{plot}");
        assert!(plot.contains('x'), "{plot}");
        assert!(plot.contains("fast"), "{plot}");
        assert!(plot.contains("slow"), "{plot}");
    }

    #[test]
    fn fast_series_plots_above_slow() {
        let plot = loglog(&sample(), 40, 12);
        let o_line = plot.lines().position(|l| l.contains('o')).unwrap();
        let x_line = plot.lines().position(|l| l.contains('x')).unwrap();
        assert!(o_line < x_line, "higher rate must render higher:\n{plot}");
    }

    #[test]
    fn empty_input_safe() {
        assert_eq!(loglog(&[], 10, 5), "(no data)\n");
        let empty_series = vec![("e".to_string(), vec![])];
        assert_eq!(loglog(&empty_series, 10, 5), "(no data)\n");
    }

    #[test]
    fn single_point_does_not_panic() {
        let s = vec![("p".to_string(), vec![(1e6, 1e6)])];
        let plot = loglog(&s, 20, 6);
        assert!(plot.contains('o'));
    }

    #[test]
    fn nonpositive_points_skipped() {
        let s = vec![("p".to_string(), vec![(0.0, 1.0), (-5.0, 2.0), (1e3, 1e3)])];
        let plot = loglog(&s, 20, 6);
        // Exactly one marker inside the grid (lines beginning with "|").
        let grid_markers: usize = plot
            .lines()
            .filter(|l| l.trim_start().starts_with('|'))
            .map(|l| l.matches('o').count())
            .sum();
        assert_eq!(grid_markers, 1, "{plot}");
    }
}
