//! Job model: the lifecycle of one benchmark run inside the service.

use std::net::IpAddr;
use std::sync::Arc;
use std::time::Instant;

use ppbench_core::{PipelineConfig, RunRecord};

/// Server-assigned job identifier (monotonic, never reused).
pub type JobId = u64;

/// Where a job is in its lifecycle.
///
/// `Queued → Running(kernel) → Done | Failed`, with `Queued → Cancelled`
/// as the only other edge. Running jobs cannot be cancelled — the kernels
/// have no safe interruption points, and a benchmark run is short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the submission queue.
    Queued,
    /// A worker is executing the pipeline; the payload is the kernel
    /// (0–3) currently running.
    Running(u8),
    /// Finished successfully; a summary is available.
    Done,
    /// The pipeline returned an error; the message is on the job.
    Failed,
    /// Removed from the queue before a worker picked it up.
    Cancelled,
}

impl JobState {
    /// Stable lowercase label used in JSON bodies and metrics.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running(_) => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// The persistent outcome of a successful run: the run record (per-kernel
/// timings) plus the full rank vector, kept so `top=K` queries for any `K`
/// return exactly what the pipeline computed.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-kernel timings and identity, as persisted by `pprank --report`.
    pub record: RunRecord,
    /// The kernel-3 rank vector, bit-exact as computed.
    pub ranks: Vec<f64>,
    /// Wall-clock seconds for the whole pipeline run.
    pub total_seconds: f64,
}

impl RunSummary {
    /// Approximate heap footprint, used for the cache byte budget. The
    /// rank vector dominates; the record and struct overhead are charged
    /// at a small flat rate.
    pub fn approx_bytes(&self) -> usize {
        self.ranks.len() * std::mem::size_of::<f64>()
            + self.record.variant.len()
            + self.record.workload.len()
            + 256
    }

    /// The `k` highest-ranked vertices as `(vertex, rank)` pairs,
    /// descending, ties broken by lower vertex id (same rule as
    /// `Kernel3Result::top_k`).
    pub fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut pairs: Vec<(u64, f64)> = self
            .ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u64, r))
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Server-assigned id.
    pub id: JobId,
    /// The configuration to run.
    pub config: PipelineConfig,
    /// Canonical hash of `config` (the cache key).
    pub config_hash: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Present once `state == Done`.
    pub summary: Option<Arc<RunSummary>>,
    /// Present once `state == Failed`.
    pub error: Option<String>,
    /// Whether the result was served from the cache without running.
    pub from_cache: bool,
    /// Submission time, for queue-latency reporting.
    pub submitted_at: Instant,
    /// IP the submission arrived from (`None` for in-process callers);
    /// the admission-control key.
    pub client: Option<IpAddr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(ranks: Vec<f64>) -> RunSummary {
        RunSummary {
            record: RunRecord {
                variant: "optimized".to_string(),
                workload: "pagerank".to_string(),
                scale: 4,
                edges: 64,
                kernels: [None; 4],
                validation_passed: None,
                threads: None,
                checksum: None,
            },
            ranks,
            total_seconds: 0.0,
        }
    }

    #[test]
    fn state_names_are_stable() {
        assert_eq!(JobState::Queued.name(), "queued");
        assert_eq!(JobState::Running(2).name(), "running");
        assert_eq!(JobState::Done.name(), "done");
        assert_eq!(JobState::Failed.name(), "failed");
        assert_eq!(JobState::Cancelled.name(), "cancelled");
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running(0).is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }

    #[test]
    fn top_k_matches_kernel3_tie_rule() {
        let s = summary(vec![0.1, 0.4, 0.4, 0.05]);
        let top = s.top_k(3);
        assert_eq!(top[0].0, 1, "tie broken by lower vertex id");
        assert_eq!(top[1].0, 2);
        assert_eq!(top[2].0, 0);
    }

    #[test]
    fn approx_bytes_scales_with_ranks() {
        let small = summary(vec![0.0; 8]).approx_bytes();
        let large = summary(vec![0.0; 1024]).approx_bytes();
        assert!(large > small);
        assert!(large >= 1024 * 8);
    }
}
