//! Load generator for the serve layer: open-loop arrivals or a single
//! connection burst, driven nonblocking so one thread multiplexes
//! thousands of client sockets (mirroring the server's event loop).
//!
//! Open-loop mode schedules arrival *i* at `t0 + i/rate` and measures
//! latency from the scheduled arrival, not from when the connection
//! happened to be serviced — so a saturated server shows up as growing
//! tail latency instead of silently slowing the offered load (the
//! coordinated-omission trap). Burst mode opens every connection first,
//! then releases all requests at once; it exists to demonstrate concurrent
//! connection capacity rather than steady-state throughput.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What load to offer, and where.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// HTTP method for every request.
    pub method: String,
    /// Request path (with query string if any).
    pub path: String,
    /// Request body (empty for GET-style probes).
    pub body: String,
    /// Total requests to issue.
    pub requests: usize,
    /// Offered arrival rate in requests/second; `<= 0` selects burst mode
    /// (all connections opened up front, requests released together).
    pub rate: f64,
    /// Per-request deadline (scheduled arrival → full response); a
    /// request past it counts as an error and its socket is dropped.
    pub timeout: Duration,
    /// Cap on concurrently open sockets in open-loop mode; arrivals that
    /// would exceed it are counted as errors (the file-descriptor budget
    /// is finite even when the offered rate is not).
    pub max_open: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            body: String::new(),
            requests: 100,
            rate: 0.0,
            timeout: Duration::from_secs(30),
            max_open: 16 * 1024,
        }
    }
}

/// What happened: counts, wall clock, latency percentiles, and the status
/// codes observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests the driver tried to issue.
    pub attempted: usize,
    /// Requests that produced a complete HTTP response.
    pub completed: usize,
    /// Requests that failed (connect error, reset, or deadline).
    pub errors: usize,
    /// Wall-clock seconds from first release to last completion.
    pub seconds: f64,
    /// `completed / seconds`.
    pub achieved_rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
    /// Most sockets simultaneously open.
    pub max_concurrent: usize,
    /// Response count per HTTP status code.
    pub statuses: BTreeMap<u16, usize>,
}

impl LoadReport {
    /// Responses with the given status.
    pub fn status_count(&self, status: u16) -> usize {
        self.statuses.get(&status).copied().unwrap_or(0)
    }
}

/// Runs the configured load to completion. Fails only if the address does
/// not resolve; per-request failures are counted in the report.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let addr = cfg.addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    let request = format!(
        "{} {} HTTP/1.1\r\nHost: ppbench\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        cfg.method,
        cfg.path,
        cfg.body.len(),
        cfg.body
    );
    let request = request.into_bytes();

    let mut report = LoadReport {
        attempted: cfg.requests,
        ..LoadReport::default()
    };
    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.requests);
    let mut active: Vec<LoadConn> = Vec::new();

    let t0;
    if cfg.rate <= 0.0 {
        // Burst: open every connection before releasing any request, so
        // the peak concurrency equals the request count.
        let pre = Instant::now();
        for _ in 0..cfg.requests {
            match open_conn(&addr, &request, pre, pre + cfg.timeout) {
                Some(conn) => active.push(conn),
                None => report.errors += 1,
            }
        }
        t0 = Instant::now();
        for conn in &mut active {
            conn.started = t0;
            conn.deadline = t0 + cfg.timeout;
        }
        report.max_concurrent = active.len();
        drain(&mut active, &mut report, &mut latencies, None);
    } else {
        t0 = Instant::now();
        let mut launched = 0usize;
        while launched < cfg.requests || !active.is_empty() {
            let now = Instant::now();
            while launched < cfg.requests {
                let scheduled = t0 + Duration::from_secs_f64(launched as f64 / cfg.rate);
                if now < scheduled {
                    break;
                }
                launched += 1;
                if active.len() >= cfg.max_open {
                    report.errors += 1;
                    continue;
                }
                match open_conn(&addr, &request, scheduled, scheduled + cfg.timeout) {
                    Some(conn) => active.push(conn),
                    None => report.errors += 1,
                }
            }
            report.max_concurrent = report.max_concurrent.max(active.len());
            drain(&mut active, &mut report, &mut latencies, Some(1));
            if launched < cfg.requests || !active.is_empty() {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
    report.seconds = t0.elapsed().as_secs_f64();
    report.completed = latencies.len();
    report.achieved_rps = if report.seconds > 0.0 {
        report.completed as f64 / report.seconds
    } else {
        0.0
    };
    latencies.sort_by(f64::total_cmp);
    report.p50_ms = percentile(&latencies, 0.50) * 1e3;
    report.p90_ms = percentile(&latencies, 0.90) * 1e3;
    report.p99_ms = percentile(&latencies, 0.99) * 1e3;
    report.max_ms = latencies.last().copied().unwrap_or(0.0) * 1e3;
    Ok(report)
}

fn open_conn(
    addr: &std::net::SocketAddr,
    request: &[u8],
    started: Instant,
    deadline: Instant,
) -> Option<LoadConn> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nonblocking(true).ok()?;
    // ppbench: allow(discarded-result, reason = "nodelay is advisory; latency is still measured correctly without it")
    let _ = stream.set_nodelay(true);
    Some(LoadConn {
        stream,
        out: request.to_vec(),
        written: 0,
        inbuf: Vec::new(),
        started,
        deadline,
    })
}

/// Drives every active connection once (or until all complete when
/// `passes` is `None`), recording completions and errors.
fn drain(
    active: &mut Vec<LoadConn>,
    report: &mut LoadReport,
    latencies: &mut Vec<f64>,
    passes: Option<usize>,
) {
    let mut remaining = passes;
    loop {
        let now = Instant::now();
        let mut progressed = false;
        active.retain_mut(|conn| match conn.drive(now) {
            None => true,
            Some(outcome) => {
                progressed = true;
                match outcome {
                    Ok((status, latency)) => {
                        latencies.push(latency);
                        *report.statuses.entry(status).or_insert(0) += 1;
                    }
                    Err(()) => report.errors += 1,
                }
                false
            }
        });
        match &mut remaining {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    return;
                }
            }
            None => {
                if active.is_empty() {
                    return;
                }
                if !progressed {
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
    }
}

/// One in-flight request: write the request, then read to EOF (the server
/// closes after each response).
struct LoadConn {
    stream: TcpStream,
    out: Vec<u8>,
    written: usize,
    inbuf: Vec<u8>,
    started: Instant,
    deadline: Instant,
}

impl LoadConn {
    /// `None` = still in flight; `Some(Ok((status, latency_seconds)))` on
    /// a complete response; `Some(Err(()))` on failure or deadline.
    fn drive(&mut self, now: Instant) -> Option<Result<(u16, f64), ()>> {
        while self.written < self.out.len() {
            let pending = self.out.get(self.written..).unwrap_or(&[]);
            match self.stream.write(pending) {
                Ok(0) => return Some(Err(())),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Some(Err(())),
            }
        }
        if self.written >= self.out.len() {
            let mut buf = [0u8; 4096];
            loop {
                match self.stream.read(&mut buf) {
                    Ok(0) => {
                        let latency = self.started.elapsed().as_secs_f64();
                        return Some(match parse_status(&self.inbuf) {
                            Some(status) => Ok((status, latency)),
                            None => Err(()),
                        });
                    }
                    Ok(n) => {
                        self.inbuf.extend_from_slice(buf.get(..n).unwrap_or(&buf));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return Some(Err(())),
                }
            }
        }
        if now >= self.deadline {
            return Some(Err(()));
        }
        None
    }
}

/// Status code from `HTTP/1.x NNN ...`, if a full status line arrived.
fn parse_status(response: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(response.get(..64.min(response.len()))?).ok()?;
    let mut parts = text.split_whitespace();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

/// Nearest-rank percentile over an ascending-sorted slice of seconds.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&values, 0.50), 50.0);
        assert_eq!(percentile(&values, 0.99), 99.0);
        assert_eq!(percentile(&values, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn status_line_parses() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\n..."), Some(200));
        assert_eq!(
            parse_status(b"HTTP/1.1 429 Too Many Requests\r\n"),
            Some(429)
        );
        assert_eq!(parse_status(b"garbage"), None);
        assert_eq!(parse_status(b""), None);
    }
}
