//! Minimal HTTP/1.1 client for the service's own tests, the CI smoke
//! job, and the `loadgen` example. One request per connection, matching
//! the server's `Connection: close` behavior.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (200, 429, …).
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request against `addr`. `body`, when present, is sent as
/// `application/json` with a `Content-Length`.
pub fn http_request<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: ppbench\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &str) -> Option<HttpResponse> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Some(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                   Retry-After: 1\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(
            r.header("Retry-After"),
            Some("1"),
            "lookup is case-insensitive"
        );
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_none());
    }
}
