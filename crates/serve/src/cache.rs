//! Result cache: canonical config hash → completed run summary, with
//! least-recently-used eviction under a byte budget.
//!
//! The pipeline is deterministic for a fixed config (the paper's §IV
//! validation property), so a cached summary is exactly what a fresh run
//! would produce — the service returns it without queueing a job.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::job::RunSummary;

/// LRU map from canonical config hash to run summary, bounded by an
/// approximate byte budget rather than an entry count (rank vectors grow
/// as 2^scale, so entry sizes vary by orders of magnitude).
#[derive(Debug)]
pub struct ResultCache {
    budget_bytes: usize,
    used_bytes: usize,
    tick: u64,
    entries: BTreeMap<u64, Entry>,
}

#[derive(Debug)]
struct Entry {
    summary: Arc<RunSummary>,
    bytes: usize,
    last_used: u64,
}

impl ResultCache {
    /// Creates a cache that evicts down to `budget_bytes`. A zero budget
    /// disables caching entirely (every insert is immediately evicted).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Looks up `hash`, refreshing its recency on a hit.
    pub fn get(&mut self, hash: u64) -> Option<Arc<RunSummary>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&hash).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.summary)
        })
    }

    /// Inserts (or replaces) the summary for `hash`, then evicts
    /// least-recently-used entries until the budget holds. An entry larger
    /// than the whole budget is never retained.
    pub fn insert(&mut self, hash: u64, summary: Arc<RunSummary>) {
        let bytes = summary.approx_bytes();
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            hash,
            Entry {
                summary,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.used_bytes -= old.bytes;
        }
        self.used_bytes += bytes;
        while self.used_bytes > self.budget_bytes {
            let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                self.used_bytes -= evicted.bytes;
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Whether `hash` is present (without refreshing recency).
    pub fn contains(&self, hash: u64) -> bool {
        self.entries.contains_key(&hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_core::RunRecord;

    fn summary(rank_count: usize) -> Arc<RunSummary> {
        Arc::new(RunSummary {
            record: RunRecord {
                variant: "optimized".to_string(),
                workload: "pagerank".to_string(),
                scale: 4,
                edges: 64,
                kernels: [None; 4],
                validation_passed: Some(true),
                threads: None,
                checksum: None,
            },
            ranks: vec![0.5; rank_count],
            total_seconds: 1.0,
        })
    }

    #[test]
    fn hit_and_miss() {
        let mut cache = ResultCache::new(1 << 20);
        assert!(cache.get(1).is_none());
        cache.insert(1, summary(4));
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let one = summary(128).approx_bytes();
        let mut cache = ResultCache::new(one * 3);
        for hash in 0..10u64 {
            cache.insert(hash, summary(128));
        }
        assert!(cache.used_bytes() <= cache.budget_bytes());
        assert!(cache.len() <= 3);
        assert!(!cache.is_empty(), "budget fits at least one entry");
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let one = summary(128).approx_bytes();
        let mut cache = ResultCache::new(one * 2);
        cache.insert(1, summary(128));
        cache.insert(2, summary(128));
        assert!(cache.get(1).is_some(), "touch 1 so 2 becomes the LRU");
        cache.insert(3, summary(128));
        assert!(cache.contains(1), "recently used survives");
        assert!(!cache.contains(2), "least recently used is evicted");
        assert!(cache.contains(3));
    }

    #[test]
    fn replacement_does_not_double_count() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(1, summary(128));
        let used = cache.used_bytes();
        cache.insert(1, summary(128));
        assert_eq!(cache.used_bytes(), used);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn oversized_entry_never_sticks() {
        let mut cache = ResultCache::new(64);
        cache.insert(1, summary(1024));
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(1, summary(4));
        assert!(cache.get(1).is_none());
    }
}
