//! Tiered result cache: canonical config hash → completed run summary.
//!
//! Two tiers, both budgeted in **bytes** (rank vectors grow as 2^scale,
//! so entry counts are meaningless):
//!
//! * [`ResultCache`] — the in-memory LRU the submit path consults under
//!   the service lock.
//! * [`DiskCache`] — an on-disk canonical-JSON store (`run-<hash>.json`
//!   files, written tmp-then-rename) so cached results survive a service
//!   restart. Rank vectors are stored as IEEE-754 bit patterns in hex, so
//!   a revived summary is bit-identical to the run that produced it.
//!
//! The pipeline is deterministic for a fixed config (the paper's §IV
//! validation property), so a cached summary is exactly what a fresh run
//! would produce — the service returns it without queueing a job.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use ppbench_core::RunRecord;

use crate::job::RunSummary;
use crate::json::Json;

/// LRU map from canonical config hash to run summary, bounded by an
/// approximate byte budget rather than an entry count (rank vectors grow
/// as 2^scale, so entry sizes vary by orders of magnitude).
#[derive(Debug)]
pub struct ResultCache {
    budget_bytes: usize,
    used_bytes: usize,
    tick: u64,
    entries: BTreeMap<u64, Entry>,
}

#[derive(Debug)]
struct Entry {
    summary: Arc<RunSummary>,
    bytes: usize,
    last_used: u64,
}

impl ResultCache {
    /// Creates a cache that evicts down to `budget_bytes`. A zero budget
    /// disables caching entirely (every insert is immediately evicted).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            used_bytes: 0,
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Looks up `hash`, refreshing its recency on a hit.
    pub fn get(&mut self, hash: u64) -> Option<Arc<RunSummary>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&hash).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.summary)
        })
    }

    /// Inserts (or replaces) the summary for `hash`, then evicts
    /// least-recently-used entries until the budget holds. An entry larger
    /// than the whole budget is never retained.
    pub fn insert(&mut self, hash: u64, summary: Arc<RunSummary>) {
        let bytes = summary.approx_bytes();
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            hash,
            Entry {
                summary,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.used_bytes -= old.bytes;
        }
        self.used_bytes += bytes;
        while self.used_bytes > self.budget_bytes {
            let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                self.used_bytes -= evicted.bytes;
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Whether `hash` is present (without refreshing recency).
    pub fn contains(&self, hash: u64) -> bool {
        self.entries.contains_key(&hash)
    }
}

/// Version tag of the on-disk cache-entry format.
const DISK_SCHEMA: &str = "ppbench-serve-cache-v1";

/// The on-disk tier: one canonical-JSON file per cached result, an
/// in-memory index of `(hash → size, recency)`, and LRU eviction under a
/// byte budget measured in actual file sizes.
///
/// The store is scanned once at [`DiskCache::open`] (recency seeded from
/// file mtimes, oldest first); after that every operation goes through
/// the index, so `contains` is cheap enough to call on the submit path.
/// Corrupt or truncated files are deleted on first read rather than
/// poisoning the service.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    budget_bytes: u64,
    used_bytes: u64,
    tick: u64,
    entries: BTreeMap<u64, DiskEntry>,
}

#[derive(Debug)]
struct DiskEntry {
    bytes: u64,
    last_used: u64,
}

impl DiskCache {
    /// Opens (creating if needed) the store at `dir` and indexes every
    /// `run-<hash>.json` file already present, evicting oldest-first if
    /// the surviving set exceeds `budget_bytes`.
    pub fn open(dir: &Path, budget_bytes: u64) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut found: Vec<(SystemTime, u64, u64)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(hash) = name.to_str().and_then(parse_entry_name) else {
                continue;
            };
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((mtime, hash, meta.len()));
        }
        // Oldest first so the assigned recency ticks reproduce the
        // on-disk age order; ties break by hash for determinism.
        found.sort();
        let mut cache = Self {
            dir: dir.to_path_buf(),
            budget_bytes,
            used_bytes: 0,
            tick: 0,
            entries: BTreeMap::new(),
        };
        for (_, hash, bytes) in found {
            cache.tick += 1;
            cache.entries.insert(
                hash,
                DiskEntry {
                    bytes,
                    last_used: cache.tick,
                },
            );
            cache.used_bytes += bytes;
        }
        cache.evict_to_budget();
        Ok(cache)
    }

    fn path_for(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("run-{hash:016x}.json"))
    }

    /// Whether `hash` is indexed (no file I/O, no recency refresh).
    pub fn contains(&self, hash: u64) -> bool {
        self.entries.contains_key(&hash)
    }

    /// Reads and revives the summary for `hash`, refreshing its recency.
    /// A missing, unreadable, or corrupt file removes the entry (and the
    /// file, best-effort) and misses.
    pub fn get(&mut self, hash: u64) -> Option<Arc<RunSummary>> {
        if !self.entries.contains_key(&hash) {
            return None;
        }
        let path = self.path_for(hash);
        let revived = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| summary_from_json(&text, hash));
        match revived {
            Ok(summary) => {
                self.tick += 1;
                if let Some(e) = self.entries.get_mut(&hash) {
                    e.last_used = self.tick;
                }
                Some(Arc::new(summary))
            }
            Err(_) => {
                self.drop_entry(hash);
                None
            }
        }
    }

    /// Persists `summary` under `hash` (tmp file + atomic rename), then
    /// evicts least-recently-used entries until the byte budget holds. An
    /// entry larger than the whole budget is not written at all.
    pub fn insert(&mut self, hash: u64, summary: &RunSummary) -> std::io::Result<()> {
        let text = summary_to_json(hash, summary);
        let bytes = text.len() as u64;
        if bytes > self.budget_bytes {
            return Ok(());
        }
        let path = self.path_for(hash);
        let tmp = self.dir.join(format!("run-{hash:016x}.tmp"));
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, &path)?;
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            hash,
            DiskEntry {
                bytes,
                last_used: self.tick,
            },
        ) {
            self.used_bytes -= old.bytes;
        }
        self.used_bytes += bytes;
        self.evict_to_budget();
        Ok(())
    }

    fn drop_entry(&mut self, hash: u64) {
        if let Some(e) = self.entries.remove(&hash) {
            self.used_bytes = self.used_bytes.saturating_sub(e.bytes);
        }
        let path = self.path_for(hash);
        // ppbench: allow(discarded-result, reason = "evicting a cache file is best-effort; a leftover file is re-indexed (and re-aged) at next open")
        let _ = std::fs::remove_file(&path);
    }

    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.budget_bytes {
            let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            self.drop_entry(oldest);
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently held on disk (sum of indexed file sizes).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }
}

/// Parses `run-<16 hex digits>.json` into the hash, rejecting anything
/// else (tmp files, foreign files).
fn parse_entry_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("run-")?.strip_suffix(".json")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Renders one cache entry as canonical JSON. The rank vector is encoded
/// as a single hex string of IEEE-754 bit patterns (16 chars per f64):
/// compact, trivially canonical, and bit-exact by construction.
fn summary_to_json(hash: u64, summary: &RunSummary) -> String {
    let mut ranks_hex = String::with_capacity(summary.ranks.len() * 16);
    for rank in &summary.ranks {
        ranks_hex.push_str(&format!("{:016x}", rank.to_bits()));
    }
    let mut obj = ppbench_core::json::JsonObject::new();
    obj.set_str("schema", DISK_SCHEMA)
        .set_str("hash", &format!("{hash:016x}"))
        .set_raw("record", summary.record.to_json())
        .set_str("ranks_hex", &ranks_hex)
        .set_f64("total_seconds", summary.total_seconds);
    obj.render()
}

/// Parses a cache-entry file back into a summary, verifying the schema
/// tag and that the embedded hash matches the file we asked for (a
/// renamed or cross-copied file must not serve the wrong config).
fn summary_from_json(text: &str, expect_hash: u64) -> Result<RunSummary, String> {
    let v = Json::parse(text).map_err(|e| e.to_string())?;
    if v.get("schema").and_then(Json::as_str) != Some(DISK_SCHEMA) {
        return Err(format!("not a {DISK_SCHEMA} entry"));
    }
    let hash = v
        .get("hash")
        .and_then(Json::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or("missing or malformed hash")?;
    if hash != expect_hash {
        return Err(format!(
            "entry hash {hash:016x} does not match file name {expect_hash:016x}"
        ));
    }
    let record = record_from_json(v.get("record").ok_or("missing record")?)?;
    let ranks_hex = v
        .get("ranks_hex")
        .and_then(Json::as_str)
        .ok_or("missing ranks_hex")?;
    let ranks = ranks_from_hex(ranks_hex)?;
    let total_seconds = v
        .get("total_seconds")
        .and_then(Json::as_f64)
        .ok_or("missing total_seconds")?;
    Ok(RunSummary {
        record,
        ranks,
        total_seconds,
    })
}

fn ranks_from_hex(hex: &str) -> Result<Vec<f64>, String> {
    let bytes = hex.as_bytes();
    if !bytes.len().is_multiple_of(16) {
        return Err("ranks_hex length is not a multiple of 16".into());
    }
    let mut ranks = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let s = std::str::from_utf8(chunk).map_err(|_| "ranks_hex is not ASCII hex")?;
        let bits = u64::from_str_radix(s, 16).map_err(|_| "ranks_hex is not ASCII hex")?;
        ranks.push(f64::from_bits(bits));
    }
    Ok(ranks)
}

/// Parses the `RunRecord` JSON produced by
/// [`RunRecord::to_json`](ppbench_core::RunRecord::to_json). Seconds and
/// rates round-trip bit-exactly because `to_json` emits shortest
/// round-trip decimals.
fn record_from_json(v: &Json) -> Result<RunRecord, String> {
    if v.get("record").and_then(Json::as_str) != Some("ppbench-run-v1") {
        return Err("record is not ppbench-run-v1".into());
    }
    let str_field = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(format!("record is missing {key}"))
    };
    let mut kernels: [Option<(f64, f64)>; 4] = [None; 4];
    let Some(Json::Array(entries)) = v.get("kernels") else {
        return Err("record is missing kernels".into());
    };
    for entry in entries {
        let k = entry
            .get("kernel")
            .and_then(Json::as_u64)
            .filter(|&k| k < 4)
            .ok_or("bad kernel index")?;
        let secs = entry
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or("bad kernel seconds")?;
        let rate = entry
            .get("edges_per_second")
            .and_then(Json::as_f64)
            .ok_or("bad kernel rate")?;
        if let Some(slot) = kernels.get_mut(k as usize) {
            *slot = Some((secs, rate));
        }
    }
    let opt = |key: &str| match v.get(key) {
        None | Some(Json::Null) => None,
        Some(other) => Some(other.clone()),
    };
    let validation_passed = match opt("validation_passed") {
        None => None,
        Some(j) => Some(j.as_bool().ok_or("bad validation_passed")?),
    };
    let threads = match opt("threads") {
        None => None,
        Some(j) => Some(j.as_u64().ok_or("bad threads")?),
    };
    let checksum = match opt("checksum") {
        None => None,
        Some(j) => Some(
            j.as_str()
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or("bad checksum")?,
        ),
    };
    Ok(RunRecord {
        variant: str_field("variant")?,
        workload: str_field("workload")?,
        scale: v
            .get("scale")
            .and_then(Json::as_u64)
            .and_then(|s| u32::try_from(s).ok())
            .ok_or("bad scale")?,
        edges: v.get("edges").and_then(Json::as_u64).ok_or("bad edges")?,
        kernels,
        validation_passed,
        threads,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_core::RunRecord;

    fn summary(rank_count: usize) -> Arc<RunSummary> {
        Arc::new(RunSummary {
            record: RunRecord {
                variant: "optimized".to_string(),
                workload: "pagerank".to_string(),
                scale: 4,
                edges: 64,
                kernels: [None; 4],
                validation_passed: Some(true),
                threads: None,
                checksum: None,
            },
            ranks: vec![0.5; rank_count],
            total_seconds: 1.0,
        })
    }

    #[test]
    fn hit_and_miss() {
        let mut cache = ResultCache::new(1 << 20);
        assert!(cache.get(1).is_none());
        cache.insert(1, summary(4));
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let one = summary(128).approx_bytes();
        let mut cache = ResultCache::new(one * 3);
        for hash in 0..10u64 {
            cache.insert(hash, summary(128));
        }
        assert!(cache.used_bytes() <= cache.budget_bytes());
        assert!(cache.len() <= 3);
        assert!(!cache.is_empty(), "budget fits at least one entry");
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let one = summary(128).approx_bytes();
        let mut cache = ResultCache::new(one * 2);
        cache.insert(1, summary(128));
        cache.insert(2, summary(128));
        assert!(cache.get(1).is_some(), "touch 1 so 2 becomes the LRU");
        cache.insert(3, summary(128));
        assert!(cache.contains(1), "recently used survives");
        assert!(!cache.contains(2), "least recently used is evicted");
        assert!(cache.contains(3));
    }

    #[test]
    fn replacement_does_not_double_count() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(1, summary(128));
        let used = cache.used_bytes();
        cache.insert(1, summary(128));
        assert_eq!(cache.used_bytes(), used);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn oversized_entry_never_sticks() {
        let mut cache = ResultCache::new(64);
        cache.insert(1, summary(1024));
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(1, summary(4));
        assert!(cache.get(1).is_none());
    }

    // --- disk tier ---

    fn disk_summary() -> RunSummary {
        RunSummary {
            record: RunRecord {
                variant: "optimized".to_string(),
                workload: "bfs".to_string(),
                scale: 7,
                edges: 512,
                kernels: [
                    Some((0.125, 4096.0)),
                    Some((0.5, 1024.0)),
                    None,
                    Some((0.001234567891234, 414_720.75)),
                ],
                validation_passed: Some(true),
                threads: Some(2),
                checksum: Some(0xdead_beef_cafe_f00d),
            },
            // Awkward bit patterns on purpose: subnormal, -0.0, and a
            // value with no short decimal form.
            ranks: vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1.0 / 3.0],
            total_seconds: 2.0,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ppbench-diskcache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_roundtrip_is_bit_identical_across_open() {
        let dir = tmp_dir("roundtrip");
        let original = disk_summary();
        {
            let mut disk = DiskCache::open(&dir, 1 << 20).unwrap();
            disk.insert(42, &original).unwrap();
            assert!(disk.contains(42));
            assert!(disk.used_bytes() > 0);
        }
        // A fresh open simulates a service restart.
        let mut disk = DiskCache::open(&dir, 1 << 20).unwrap();
        assert!(disk.contains(42));
        let revived = disk.get(42).expect("revives after reopen");
        assert_eq!(revived.record, original.record);
        assert_eq!(revived.total_seconds, original.total_seconds);
        assert_eq!(revived.ranks.len(), original.ranks.len());
        for (a, b) in revived.ranks.iter().zip(&original.ranks) {
            assert_eq!(a.to_bits(), b.to_bits(), "ranks must revive bit-exactly");
        }
        assert!(disk.get(43).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_evicts_oldest_and_deletes_files() {
        let dir = tmp_dir("budget");
        let one = summary_to_json(0, &disk_summary()).len() as u64;
        let mut disk = DiskCache::open(&dir, one * 2).unwrap();
        for hash in 1..=5u64 {
            disk.insert(hash, &disk_summary()).unwrap();
        }
        assert!(disk.used_bytes() <= disk.budget_bytes());
        assert!(disk.len() <= 2);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, disk.len(), "evicted entries must leave no files");
        assert!(disk.contains(5), "newest entry survives");
        assert!(!disk.contains(1), "oldest entry evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_oversized_entry_is_not_written() {
        let dir = tmp_dir("oversized");
        let mut disk = DiskCache::open(&dir, 16).unwrap();
        disk.insert(7, &disk_summary()).unwrap();
        assert!(disk.is_empty());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_files_are_removed_not_served() {
        let dir = tmp_dir("corrupt");
        {
            let mut disk = DiskCache::open(&dir, 1 << 20).unwrap();
            disk.insert(1, &disk_summary()).unwrap();
        }
        // Truncate entry 1 and plant a foreign file under another hash.
        std::fs::write(dir.join(format!("run-{:016x}.json", 1u64)), "{trunc").unwrap();
        let renamed = summary_to_json(9, &disk_summary());
        std::fs::write(dir.join(format!("run-{:016x}.json", 2u64)), renamed).unwrap();
        std::fs::write(dir.join("notes.txt"), "not a cache entry").unwrap();

        let mut disk = DiskCache::open(&dir, 1 << 20).unwrap();
        assert_eq!(disk.len(), 2, "foreign files are not indexed");
        assert!(disk.get(1).is_none(), "corrupt entry misses");
        assert!(!disk.contains(1), "…and is dropped from the index");
        assert!(
            !dir.join(format!("run-{:016x}.json", 1u64)).exists(),
            "…and its file is deleted"
        );
        assert!(
            disk.get(2).is_none(),
            "hash mismatch (renamed file) must not serve the wrong config"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_names_parse_strictly() {
        assert_eq!(parse_entry_name("run-00000000000000ff.json"), Some(255));
        assert_eq!(parse_entry_name("run-00000000000000ff.tmp"), None);
        assert_eq!(parse_entry_name("run-ff.json"), None);
        assert_eq!(parse_entry_name("other.json"), None);
    }

    #[test]
    fn record_json_roundtrips_through_the_serve_parser() {
        let record = disk_summary().record;
        let parsed = record_from_json(&Json::parse(&record.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, record);
        // Optional fields as nulls.
        let mut bare = record.clone();
        bare.validation_passed = None;
        bare.threads = None;
        bare.checksum = None;
        let parsed = record_from_json(&Json::parse(&bare.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, bare);
        // Malformed records are rejected, not defaulted.
        assert!(record_from_json(&Json::parse("{}").unwrap()).is_err());
        let wrong_tag = record.to_json().replace("ppbench-run-v1", "ppbench-run-v9");
        assert!(record_from_json(&Json::parse(&wrong_tag).unwrap()).is_err());
    }
}
