//! The benchmark service: bounded submission queue, worker pool, tiered
//! result cache, request coalescing, per-client admission control, and the
//! job registry behind one mutex + two condvars.
//!
//! Locking discipline: the state mutex guards only bookkeeping (queue, job
//! map, in-memory cache, coalescing tables). Pipeline runs — the expensive
//! part — happen outside the lock; workers reacquire it only to publish
//! state transitions. The disk tier has its own mutex, acquired only while
//! the state lock is **not** held (submission drops the state lock before
//! probing disk; workers publish results first, then persist), so file I/O
//! never extends a state critical section and the two locks cannot deadlock.
//! `work_available` wakes idle workers, `job_changed` wakes anyone waiting
//! on a job (the drain path and the test helpers).
//!
//! Coalescing: the pipeline is deterministic per canonical config, so when
//! a submission matches a config already queued or running, the service
//! registers the new job as a *follower* of that leader instead of queueing
//! a second run. When the leader finishes, every follower is published with
//! the same shared summary — one pipeline run, N waiters, bit-identical
//! results for all of them.

use std::collections::{BTreeMap, VecDeque};
use std::net::IpAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ppbench_core::{KernelTiming, Pipeline, PipelineConfig, PipelineObserver, RunRecord};

use crate::cache::{DiskCache, ResultCache};
use crate::job::{Job, JobId, JobState, RunSummary};
use crate::metrics::{Gauges, Metrics};

/// Tunables for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing pipeline runs.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions are
    /// rejected with [`SubmitError::QueueFull`]. Coalesced followers do
    /// not occupy queue slots.
    pub queue_depth: usize,
    /// In-memory result-cache byte budget.
    pub cache_bytes: usize,
    /// Largest accepted scale factor; protects the host from a request
    /// for 2^40 vertices.
    pub max_scale: u32,
    /// Maximum terminal (done / failed / cancelled) job records retained;
    /// the oldest are evicted first, so a long-running service does not
    /// grow its job registry (and the rank vectors pinned by `Done`
    /// records) without bound. Values below 1 are treated as 1.
    pub max_terminal_jobs: usize,
    /// Directory under which per-job working directories are created.
    pub work_root: PathBuf,
    /// Directory for the on-disk result tier; `None` disables it. With a
    /// directory set, completed results are persisted as canonical JSON
    /// and survive a service restart.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the on-disk tier (actual file sizes).
    pub disk_cache_bytes: u64,
    /// Maximum non-terminal (queued / running, leader or follower) jobs
    /// any single client IP may hold; further submissions are rejected
    /// with [`SubmitError::QuotaExceeded`]. `0` disables the quota.
    /// In-process submissions (no client IP) are never limited.
    pub max_jobs_per_client: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            max_scale: 22,
            max_terminal_jobs: 1024,
            work_root: std::env::temp_dir().join("ppbench-serve"),
            cache_dir: None,
            disk_cache_bytes: 256 << 20,
            max_jobs_per_client: 0,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at `queue_depth`; retry later (HTTP 429).
    QueueFull,
    /// The client already holds `max_jobs_per_client` non-terminal jobs
    /// (HTTP 429).
    QuotaExceeded,
    /// The service is draining and accepts no new work (HTTP 503).
    Draining,
    /// The requested scale exceeds `max_scale` (HTTP 400).
    ScaleTooLarge {
        /// Scale the client asked for.
        requested: u32,
        /// The service's limit.
        limit: u32,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is full"),
            SubmitError::QuotaExceeded => {
                write!(f, "client has too many jobs in flight")
            }
            SubmitError::Draining => write!(f, "service is draining"),
            SubmitError::ScaleTooLarge { requested, limit } => {
                write!(
                    f,
                    "scale {requested} exceeds this server's limit of {limit}"
                )
            }
        }
    }
}

/// Outcome of a cancel request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was queued and is now cancelled.
    Cancelled,
    /// The job is running or already terminal; nothing changed.
    NotCancellable(JobState),
    /// No such job.
    NotFound,
}

/// What `submit` returns: the job id plus how the submission was
/// satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// Assigned job id.
    pub id: JobId,
    /// Canonical hash of the submitted config.
    pub config_hash: u64,
    /// True when the job was satisfied from the result cache (either
    /// tier) and is already `Done`.
    pub cached: bool,
    /// True when the job coalesced onto an identical in-flight run and
    /// will complete together with it.
    pub coalesced: bool,
}

struct State {
    // BTreeMap, not HashMap: `/jobs`-style listings and the drain path
    // observe iteration order, and the determinism invariant (enforced by
    // ppbench-analyze) requires that order to be stable across runs.
    jobs: BTreeMap<JobId, Job>,
    queue: VecDeque<JobId>,
    /// Terminal job ids in completion order; the pruning window.
    terminal_order: VecDeque<JobId>,
    cache: ResultCache,
    /// Canonical config hash → leader job currently queued or running for
    /// it. Entries exist exactly while a run is in flight.
    inflight: BTreeMap<u64, JobId>,
    /// Leader job → followers coalesced onto it, in arrival order.
    followers: BTreeMap<JobId, Vec<JobId>>,
    /// Non-terminal jobs per client IP; the admission-control ledger.
    active_by_client: BTreeMap<IpAddr, u64>,
    next_id: JobId,
    draining: bool,
    shutdown: bool,
    running: usize,
}

impl State {
    /// Records that job `id` reached a terminal state and evicts the
    /// oldest terminal records beyond `cap`. Jobs in the queue or running
    /// are never evicted — only finished history is.
    fn retire(&mut self, id: JobId, cap: usize) {
        self.terminal_order.push_back(id);
        while self.terminal_order.len() > cap.max(1) {
            if let Some(old) = self.terminal_order.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }

    /// Charges one non-terminal job to `client`'s quota ledger.
    fn charge_client(&mut self, client: Option<IpAddr>) {
        if let Some(ip) = client {
            *self.active_by_client.entry(ip).or_insert(0) += 1;
        }
    }

    /// Releases one non-terminal job from `client`'s ledger.
    fn release_client(&mut self, client: Option<IpAddr>) {
        if let Some(ip) = client {
            let drained = match self.active_by_client.get_mut(&ip) {
                Some(n) => {
                    *n = n.saturating_sub(1);
                    *n == 0
                }
                None => false,
            };
            if drained {
                self.active_by_client.remove(&ip);
            }
        }
    }

    /// Registers an already-`Done` job (cache hit, either tier).
    fn admit_done(
        &mut self,
        config: PipelineConfig,
        hash: u64,
        summary: Arc<RunSummary>,
        client: Option<IpAddr>,
        cap: usize,
    ) -> SubmitReceipt {
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                id,
                config,
                config_hash: hash,
                state: JobState::Done,
                summary: Some(summary),
                error: None,
                from_cache: true,
                submitted_at: Instant::now(),
                client,
            },
        );
        self.retire(id, cap);
        SubmitReceipt {
            id,
            config_hash: hash,
            cached: true,
            coalesced: false,
        }
    }
}

struct Inner {
    state: Mutex<State>,
    /// The on-disk tier, `None` when disabled. Never locked while the
    /// state mutex is held (see module docs).
    disk: Option<Mutex<DiskCache>>,
    work_available: Condvar,
    job_changed: Condvar,
    metrics: Metrics,
    cfg: ServiceConfig,
}

impl Inner {
    /// Quota gate for one new non-terminal job from `client`.
    fn check_quota(&self, state: &State, client: Option<IpAddr>) -> Result<(), SubmitError> {
        let limit = self.cfg.max_jobs_per_client;
        if limit == 0 {
            return Ok(());
        }
        let Some(ip) = client else {
            return Ok(());
        };
        let active = state.active_by_client.get(&ip).copied().unwrap_or(0);
        if active >= limit as u64 {
            Metrics::inc(&self.metrics.rejected_quota);
            return Err(SubmitError::QuotaExceeded);
        }
        Ok(())
    }
}

/// The benchmark service. Dropping it (or calling [`Service::drain`])
/// finishes all accepted work and stops the workers.
pub struct Service {
    inner: Arc<Inner>,
    // Behind a mutex so `drain` works through `&self` (the HTTP layer
    // shares the service via `Arc`).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Opens the disk tier (if configured) and starts the worker pool.
    /// Fails if the cache directory cannot be created or the OS refuses to
    /// spawn a worker thread; any threads spawned before the failure are
    /// shut down cleanly before the error is returned.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Self> {
        let disk = match &cfg.cache_dir {
            Some(dir) => Some(Mutex::new(DiskCache::open(dir, cfg.disk_cache_bytes)?)),
            None => None,
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                terminal_order: VecDeque::new(),
                cache: ResultCache::new(cfg.cache_bytes),
                inflight: BTreeMap::new(),
                followers: BTreeMap::new(),
                active_by_client: BTreeMap::new(),
                next_id: 1,
                draining: false,
                shutdown: false,
                running: 0,
            }),
            disk,
            work_available: Condvar::new(),
            job_changed: Condvar::new(),
            metrics: Metrics::default(),
            cfg,
        });
        let mut workers = Vec::with_capacity(inner.cfg.workers.max(1));
        for i in 0..inner.cfg.workers.max(1) {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("ppbench-worker-{i}"))
                .spawn(move || worker_loop(&worker_inner));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    inner.state.lock().shutdown = true;
                    inner.work_available.notify_all();
                    for handle in workers {
                        // ppbench: allow(discarded-result, reason = "already failing with the spawn error; a worker panic here cannot add information")
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// The metrics registry (shared with the HTTP layer).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Submits a configuration with no client attribution (in-process
    /// callers; never quota-limited). See [`Service::submit_from`].
    pub fn submit(&self, config: PipelineConfig) -> Result<SubmitReceipt, SubmitError> {
        self.submit_from(config, None)
    }

    /// Submits a configuration on behalf of `client`.
    ///
    /// Resolution order: in-memory cache hit (job is already `Done`) →
    /// coalesce onto an identical in-flight run (job completes with the
    /// leader) → disk-tier hit (revived, promoted to memory, `Done`) →
    /// queue a fresh run.
    pub fn submit_from(
        &self,
        config: PipelineConfig,
        client: Option<IpAddr>,
    ) -> Result<SubmitReceipt, SubmitError> {
        let hash = config.canonical_hash();
        let scale = config.spec.scale();
        if scale > self.inner.cfg.max_scale {
            return Err(SubmitError::ScaleTooLarge {
                requested: scale,
                limit: self.inner.cfg.max_scale,
            });
        }
        {
            let mut state = self.inner.state.lock();
            if state.draining || state.shutdown {
                return Err(SubmitError::Draining);
            }
            if let Some(receipt) = self.try_admit_locked(&mut state, &config, hash, client)? {
                return Ok(receipt);
            }
        }
        // Miss in memory and nothing in flight: probe the disk tier with
        // the state lock released (file reads must not stall submissions).
        if let Some(disk) = &self.inner.disk {
            let revived = disk.lock().get(hash);
            if let Some(summary) = revived {
                let mut state = self.inner.state.lock();
                if state.draining || state.shutdown {
                    return Err(SubmitError::Draining);
                }
                Metrics::inc(&self.inner.metrics.disk_cache_hits);
                Metrics::inc(&self.inner.metrics.jobs_submitted);
                Metrics::inc(&self.inner.metrics.jobs_done);
                state.cache.insert(hash, Arc::clone(&summary));
                return Ok(state.admit_done(
                    config,
                    hash,
                    summary,
                    client,
                    self.inner.cfg.max_terminal_jobs,
                ));
            }
        }
        let mut state = self.inner.state.lock();
        if state.draining || state.shutdown {
            return Err(SubmitError::Draining);
        }
        // Re-check both fast paths: a leader may have completed (memory
        // hit) or started (coalesce) while the state lock was released.
        if let Some(receipt) = self.try_admit_locked(&mut state, &config, hash, client)? {
            return Ok(receipt);
        }
        self.inner.check_quota(&state, client)?;
        Metrics::inc(&self.inner.metrics.cache_misses);
        if state.queue.len() >= self.inner.cfg.queue_depth {
            Metrics::inc(&self.inner.metrics.rejected_queue_full);
            return Err(SubmitError::QueueFull);
        }
        Metrics::inc(&self.inner.metrics.jobs_submitted);
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            Job {
                id,
                config,
                config_hash: hash,
                state: JobState::Queued,
                summary: None,
                error: None,
                from_cache: false,
                submitted_at: Instant::now(),
                client,
            },
        );
        state.inflight.insert(hash, id);
        state.charge_client(client);
        state.queue.push_back(id);
        drop(state);
        self.inner.work_available.notify_one();
        Ok(SubmitReceipt {
            id,
            config_hash: hash,
            cached: false,
            coalesced: false,
        })
    }

    /// The two under-lock fast paths shared by both submission attempts:
    /// an in-memory cache hit, or coalescing onto an in-flight leader.
    /// Returns `Ok(None)` when neither applies.
    fn try_admit_locked(
        &self,
        state: &mut State,
        config: &PipelineConfig,
        hash: u64,
        client: Option<IpAddr>,
    ) -> Result<Option<SubmitReceipt>, SubmitError> {
        if let Some(summary) = state.cache.get(hash) {
            Metrics::inc(&self.inner.metrics.cache_hits);
            Metrics::inc(&self.inner.metrics.jobs_submitted);
            Metrics::inc(&self.inner.metrics.jobs_done);
            return Ok(Some(state.admit_done(
                config.clone(),
                hash,
                summary,
                client,
                self.inner.cfg.max_terminal_jobs,
            )));
        }
        if let Some(&leader) = state.inflight.get(&hash) {
            self.inner.check_quota(state, client)?;
            Metrics::inc(&self.inner.metrics.jobs_submitted);
            Metrics::inc(&self.inner.metrics.jobs_coalesced);
            // A follower mirrors the leader's progress from the moment it
            // joins (the leader may already be mid-kernel).
            let leader_state = state
                .jobs
                .get(&leader)
                .map(|j| j.state)
                .unwrap_or(JobState::Queued);
            let id = state.next_id;
            state.next_id += 1;
            state.jobs.insert(
                id,
                Job {
                    id,
                    config: config.clone(),
                    config_hash: hash,
                    state: leader_state,
                    summary: None,
                    error: None,
                    from_cache: false,
                    submitted_at: Instant::now(),
                    client,
                },
            );
            state.followers.entry(leader).or_default().push(id);
            state.charge_client(client);
            return Ok(Some(SubmitReceipt {
                id,
                config_hash: hash,
                cached: false,
                coalesced: true,
            }));
        }
        Ok(None)
    }

    /// A point-in-time copy of the job, for rendering.
    pub fn job(&self, id: JobId) -> Option<Job> {
        self.inner.state.lock().jobs.get(&id).cloned()
    }

    /// Cancels a queued job. Cancelling a queued *leader* promotes its
    /// first follower (if any) into the queue slot, so the remaining
    /// waiters still get their run; cancelling a follower detaches only
    /// that waiter.
    pub fn cancel(&self, id: JobId) -> CancelOutcome {
        let mut state = self.inner.state.lock();
        let (job_state, hash, client) = match state.jobs.get(&id) {
            None => return CancelOutcome::NotFound,
            Some(job) => (job.state, job.config_hash, job.client),
        };
        if job_state != JobState::Queued {
            return CancelOutcome::NotCancellable(job_state);
        }
        let was_leader = state.inflight.get(&hash) == Some(&id) && state.queue.contains(&id);
        if was_leader {
            state.queue.retain(|&qid| qid != id);
            let orphans = state.followers.remove(&id).unwrap_or_default();
            let mut rest = orphans.into_iter();
            match rest.next() {
                Some(promoted) => {
                    state.inflight.insert(hash, promoted);
                    state.queue.push_back(promoted);
                    let remaining: Vec<JobId> = rest.collect();
                    if !remaining.is_empty() {
                        state.followers.insert(promoted, remaining);
                    }
                }
                None => {
                    state.inflight.remove(&hash);
                }
            }
        } else {
            // A queued non-leader is a follower; detach it from whichever
            // leader currently owns the hash.
            if let Some(&leader) = state.inflight.get(&hash) {
                let emptied = match state.followers.get_mut(&leader) {
                    Some(list) => {
                        list.retain(|&fid| fid != id);
                        list.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    state.followers.remove(&leader);
                }
            }
        }
        if let Some(job) = state.jobs.get_mut(&id) {
            job.state = JobState::Cancelled;
        }
        state.release_client(client);
        state.retire(id, self.inner.cfg.max_terminal_jobs);
        Metrics::inc(&self.inner.metrics.jobs_cancelled);
        drop(state);
        self.inner.job_changed.notify_all();
        if was_leader {
            // A promoted follower is new queue work.
            self.inner.work_available.notify_one();
        }
        CancelOutcome::Cancelled
    }

    /// Blocks until job `id` reaches a terminal state, up to `timeout`.
    /// Returns the final job, or `None` on timeout / unknown id.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<Job> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(job) if job.state.is_terminal() => return Some(job.clone()),
                Some(_) => {}
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (next, timed_out) = self.inner.job_changed.wait_timeout(state, left);
            state = next;
            if timed_out {
                let job = state.jobs.get(&id)?;
                return job.state.is_terminal().then(|| job.clone());
            }
        }
    }

    /// Current gauge values. The state and disk locks are taken briefly
    /// and strictly in sequence, never nested.
    pub fn gauges(&self) -> Gauges {
        let (jobs_queued, jobs_running, cache_bytes, cache_entries) = {
            let state = self.inner.state.lock();
            (
                state.queue.len() as u64,
                state.running as u64,
                state.cache.used_bytes() as u64,
                state.cache.len() as u64,
            )
        };
        let (disk_cache_bytes, disk_cache_entries) = match &self.inner.disk {
            Some(disk) => {
                let disk = disk.lock();
                (disk.used_bytes(), disk.len() as u64)
            }
            None => (0, 0),
        };
        Gauges {
            jobs_queued,
            jobs_running,
            queue_depth: jobs_queued,
            cache_bytes,
            cache_entries,
            disk_cache_bytes,
            disk_cache_entries,
        }
    }

    /// Whether the service is draining (rejecting new submissions).
    pub fn is_draining(&self) -> bool {
        let state = self.inner.state.lock();
        state.draining || state.shutdown
    }

    /// Stops accepting submissions, waits for every queued and running job
    /// to finish, then stops the workers. Idempotent; called by `Drop`.
    pub fn drain(&self) {
        {
            let mut state = self.inner.state.lock();
            state.draining = true;
            while !state.queue.is_empty() || state.running > 0 {
                state = self.inner.job_changed.wait(state);
            }
            state.shutdown = true;
        }
        self.inner.work_available.notify_all();
        for handle in self.workers.lock().drain(..) {
            // ppbench: allow(discarded-result, reason = "worker bodies catch panics; a join error here is a bug in the loop itself and drain must still stop the rest")
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Observer that publishes kernel progress onto the leader job *and* every
/// follower coalesced onto it, and feeds the latency histograms.
struct JobObserver<'a> {
    inner: &'a Inner,
    id: JobId,
}

impl PipelineObserver for JobObserver<'_> {
    fn kernel_started(&self, kernel: u8) {
        let mut state = self.inner.state.lock();
        let members = party(&state, self.id);
        for jid in members {
            if let Some(job) = state.jobs.get_mut(&jid) {
                job.state = JobState::Running(kernel);
            }
        }
    }

    fn kernel_finished(&self, kernel: u8, timing: &KernelTiming) {
        if let Some(hist) = self
            .inner
            .metrics
            .kernel_seconds
            .get(usize::from(kernel.min(3)))
        {
            hist.observe(timing.seconds);
        }
    }
}

/// The leader plus its current followers, leader first.
fn party(state: &State, leader: JobId) -> Vec<JobId> {
    let mut members = vec![leader];
    if let Some(followers) = state.followers.get(&leader) {
        members.extend(followers.iter().copied());
    }
    members
}

fn worker_loop(inner: &Inner) {
    loop {
        let (id, hash, config) = {
            let mut state = inner.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    // A queued id without a job record would be a registry
                    // bug; skip it rather than poisoning the worker.
                    state.running += 1;
                    let Some(job) = state.jobs.get_mut(&id) else {
                        state.running -= 1;
                        continue;
                    };
                    job.state = JobState::Running(0);
                    break (id, job.config_hash, job.config.clone());
                }
                state = inner.work_available.wait(state);
            }
        };

        Metrics::inc(&inner.metrics.pipeline_runs);
        let started = Instant::now();
        let work_dir = inner.cfg.work_root.join(format!("job-{id}"));
        let pipeline = Pipeline::new(config, &work_dir);
        let observer = JobObserver { inner, id };
        // A panicking kernel must not unwind past this point: the
        // `running` counter would never be decremented and `drain` (hence
        // `Drop`) would block forever. Catch it and fail the job instead.
        let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.run_with_observer(&observer)
        })) {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Err(format!("pipeline panicked: {msg}"))
            }
        };
        // ppbench: allow(discarded-result, reason = "best-effort cleanup of a scratch dir; the job outcome must be published even if removal fails")
        let _ = std::fs::remove_dir_all(&work_dir);

        // Publish to the leader and every follower under the state lock;
        // persist to the disk tier only after releasing it.
        let mut persist: Option<Arc<RunSummary>> = None;
        let mut state = inner.state.lock();
        state.running -= 1;
        let members = party(&state, id);
        state.followers.remove(&id);
        if state.inflight.get(&hash) == Some(&id) {
            state.inflight.remove(&hash);
        }
        match outcome {
            Ok(result) => {
                let record = RunRecord::from_result(&result);
                let ranks = result.kernel3.map(|k| k.ranks).unwrap_or_default();
                let summary = Arc::new(RunSummary {
                    record,
                    ranks,
                    total_seconds: started.elapsed().as_secs_f64(),
                });
                state.cache.insert(hash, Arc::clone(&summary));
                for jid in members {
                    let client = state.jobs.get(&jid).and_then(|j| j.client);
                    if let Some(job) = state.jobs.get_mut(&jid) {
                        job.state = JobState::Done;
                        job.summary = Some(Arc::clone(&summary));
                    }
                    state.release_client(client);
                    state.retire(jid, inner.cfg.max_terminal_jobs);
                    Metrics::inc(&inner.metrics.jobs_done);
                }
                persist = Some(summary);
            }
            Err(err) => {
                for jid in members {
                    let client = state.jobs.get(&jid).and_then(|j| j.client);
                    if let Some(job) = state.jobs.get_mut(&jid) {
                        job.state = JobState::Failed;
                        job.error = Some(err.clone());
                    }
                    state.release_client(client);
                    state.retire(jid, inner.cfg.max_terminal_jobs);
                    Metrics::inc(&inner.metrics.jobs_failed);
                }
            }
        }
        drop(state);
        inner.job_changed.notify_all();
        if let (Some(disk), Some(summary)) = (&inner.disk, persist) {
            // ppbench: allow(discarded-result, reason = "persisting to the disk tier is best-effort; the result is already published in memory and a full disk must not fail the job")
            let _ = disk.lock().insert(hash, &summary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(6)
            .edge_factor(4)
            .seed(seed)
            .build()
    }

    fn test_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ppbench-serve-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn test_config(workers: usize, queue_depth: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            queue_depth,
            cache_bytes: 1 << 20,
            max_scale: 10,
            max_terminal_jobs: 64,
            work_root: test_root("work"),
            cache_dir: None,
            disk_cache_bytes: 1 << 20,
            max_jobs_per_client: 0,
        }
    }

    fn test_service(workers: usize, queue_depth: usize) -> Service {
        Service::start(test_config(workers, queue_depth)).expect("service starts")
    }

    #[test]
    fn submit_run_and_fetch() {
        let service = test_service(1, 8);
        let receipt = service.submit(tiny_config(1)).unwrap();
        assert!(!receipt.cached);
        assert!(!receipt.coalesced);
        let job = service
            .wait(receipt.id, Duration::from_secs(30))
            .expect("job finishes");
        assert_eq!(job.state, JobState::Done);
        let summary = job.summary.expect("done job has a summary");
        assert_eq!(summary.ranks.len(), 64);
        assert!(summary.record.kernels.iter().all(Option::is_some));
    }

    #[test]
    fn duplicate_config_hits_the_cache() {
        let service = test_service(1, 8);
        let first = service.submit(tiny_config(2)).unwrap();
        service
            .wait(first.id, Duration::from_secs(30))
            .expect("first run finishes");
        let second = service.submit(tiny_config(2)).unwrap();
        assert!(second.cached, "identical config must be a cache hit");
        let job = service.job(second.id).unwrap();
        assert_eq!(job.state, JobState::Done);
        let a = service.job(first.id).unwrap().summary.unwrap();
        let b = job.summary.unwrap();
        assert_eq!(a.ranks.len(), b.ranks.len());
        assert!(
            a.ranks
                .iter()
                .zip(&b.ranks)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "cached ranks must be bit-identical"
        );
    }

    #[test]
    fn algo_workloads_are_servable_and_cached_per_workload() {
        let service = test_service(1, 8);
        let bfs_cfg = || {
            PipelineConfig::builder()
                .scale(6)
                .edge_factor(4)
                .seed(4)
                .workload(ppbench_core::Workload::Bfs)
                .build()
        };
        let receipt = service.submit(bfs_cfg()).unwrap();
        assert!(!receipt.cached);
        let job = service
            .wait(receipt.id, Duration::from_secs(30))
            .expect("bfs job finishes");
        assert_eq!(job.state, JobState::Done, "{:?}", job.error);
        let summary = job.summary.expect("done job has a summary");
        assert_eq!(summary.record.workload, "bfs");
        assert!(summary.record.checksum.is_some());
        assert!(summary.ranks.is_empty(), "bfs produces no rank vector");
        // The same graph config with the default (PageRank) workload must
        // MISS the cache — workload is part of the run identity.
        let pr = service.submit(tiny_config(4)).unwrap();
        assert!(!pr.cached, "pagerank must not reuse the bfs result");
        service
            .wait(pr.id, Duration::from_secs(30))
            .expect("pagerank run finishes");
        // Resubmitting the bfs config is a hit.
        let again = service.submit(bfs_cfg()).unwrap();
        assert!(again.cached, "identical bfs config must be a cache hit");
        let cached = service.job(again.id).unwrap().summary.unwrap();
        assert_eq!(cached.record.checksum, summary.record.checksum);
    }

    #[test]
    fn queue_overflow_is_rejected() {
        // Zero-depth queue: no submission can wait, so the first
        // non-cached submission after the workers are busy is rejected.
        let service = test_service(1, 0);
        assert_eq!(service.submit(tiny_config(3)), Err(SubmitError::QueueFull));
    }

    #[test]
    fn oversized_scale_is_rejected() {
        let service = test_service(1, 8);
        let cfg = PipelineConfig::builder().scale(11).build();
        assert_eq!(
            service.submit(cfg),
            Err(SubmitError::ScaleTooLarge {
                requested: 11,
                limit: 10
            })
        );
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let service = test_service(1, 8);
        assert_eq!(service.cancel(999), CancelOutcome::NotFound);
        let receipt = service.submit(tiny_config(4)).unwrap();
        let done = service.wait(receipt.id, Duration::from_secs(30)).unwrap();
        assert_eq!(done.state, JobState::Done);
        assert_eq!(
            service.cancel(receipt.id),
            CancelOutcome::NotCancellable(JobState::Done)
        );
    }

    #[test]
    fn terminal_jobs_are_pruned_beyond_the_cap() {
        let mut cfg = test_config(1, 8);
        cfg.max_terminal_jobs = 2;
        cfg.work_root = test_root("prune");
        let service = Service::start(cfg).expect("service starts");
        let ids: Vec<JobId> = (0..4)
            .map(|seed| {
                let receipt = service.submit(tiny_config(200 + seed)).unwrap();
                service
                    .wait(receipt.id, Duration::from_secs(30))
                    .expect("job finishes");
                receipt.id
            })
            .collect();
        assert!(service.job(ids[0]).is_none(), "oldest record evicted");
        assert!(service.job(ids[1]).is_none());
        assert_eq!(service.job(ids[2]).unwrap().state, JobState::Done);
        assert_eq!(service.job(ids[3]).unwrap().state, JobState::Done);
        // Cache-hit submissions are terminal immediately and count too.
        let hit = service.submit(tiny_config(203)).unwrap();
        assert!(hit.cached);
        assert!(service.job(ids[2]).is_none(), "window advanced past it");
        assert!(service.job(hit.id).is_some());
    }

    #[test]
    fn drain_finishes_accepted_work_then_rejects() {
        let service = test_service(2, 8);
        let ids: Vec<JobId> = (0..4)
            .map(|seed| service.submit(tiny_config(100 + seed)).unwrap().id)
            .collect();
        service.drain();
        for id in ids {
            let job = service.job(id).expect("job retained after drain");
            assert_eq!(job.state, JobState::Done, "drain completes accepted jobs");
        }
        assert_eq!(service.submit(tiny_config(5)), Err(SubmitError::Draining));
    }
}
