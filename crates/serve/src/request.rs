//! Translating a `POST /runs` JSON body into a [`PipelineConfig`].
//!
//! Unknown fields are rejected (a typoed knob silently falling back to its
//! default would corrupt a benchmark comparison), and builder invariants
//! are checked here with proper errors instead of letting the builder
//! panic inside a worker.

use ppbench_core::{DanglingStrategy, PipelineConfig, ValidationLevel, Variant, Workload};
use ppbench_gen::{GeneratorKind, RmatSampler};
use ppbench_sort::SortKey;

use crate::json::Json;

/// Fields `POST /runs` accepts, mirroring `PipelineConfig` one to one —
/// except `input_tsv`, which is deliberately not exposed: letting HTTP
/// clients name server-side paths would be a file-disclosure hazard, so
/// TSV ingestion stays a CLI/library feature.
pub const ACCEPTED_FIELDS: [&str; 19] = [
    "add_diagonal_to_empty",
    "convergence_tolerance",
    "damping",
    "dangling",
    "edge_factor",
    "fused",
    "gen",
    "generator",
    "iterations",
    "num_files",
    "permute_vertices",
    "scale",
    "seed",
    "shuffle_edges",
    "sort_budget_bytes",
    "sort_key",
    "validation",
    "variant",
    "workload",
];

/// Builds a [`PipelineConfig`] from a parsed JSON object. Every field is
/// optional; omitted fields keep the spec defaults. Returns a
/// human-readable message on the first problem found.
pub fn config_from_json(body: &Json) -> Result<PipelineConfig, String> {
    if !matches!(body, Json::Object(_)) {
        return Err("request body must be a JSON object".to_string());
    }
    for key in body.keys() {
        if !ACCEPTED_FIELDS.contains(&key) {
            return Err(format!(
                "unknown field {key:?}; accepted fields: {}",
                ACCEPTED_FIELDS.join(", ")
            ));
        }
    }

    let u64_field = |name: &str| -> Result<Option<u64>, String> {
        match body.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("{name} must be a non-negative integer")),
        }
    };
    let f64_field = |name: &str| -> Result<Option<f64>, String> {
        match body.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .filter(|f| f.is_finite())
                .map(Some)
                .ok_or_else(|| format!("{name} must be a finite number")),
        }
    };
    let bool_field = |name: &str| -> Result<Option<bool>, String> {
        match body.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_bool()
                .map(Some)
                .ok_or_else(|| format!("{name} must be a boolean")),
        }
    };
    let str_field = |name: &str| -> Result<Option<&str>, String> {
        match body.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("{name} must be a string")),
        }
    };

    let mut b = PipelineConfig::builder();
    let scale = u64_field("scale")?;
    if let Some(scale) = scale {
        // GraphSpec::new panics for scale >= 58 (generator index
        // arithmetic); mirror its limit here as a proper error.
        if scale > 57 {
            return Err("scale must be at most 57".to_string());
        }
        b = b.scale(scale as u32);
    }
    let edge_factor = u64_field("edge_factor")?;
    if let Some(k) = edge_factor {
        if k == 0 {
            return Err("edge_factor must be at least 1".to_string());
        }
        b = b.edge_factor(k);
    }
    // The combination must also be representable: GraphSpec::new panics
    // when 2^scale * edge_factor overflows u64. Omitted fields take the
    // builder defaults (scale 16, edge factor 16).
    let eff_scale = scale.unwrap_or(16) as u32;
    let eff_factor = edge_factor.unwrap_or(ppbench_gen::DEFAULT_EDGE_FACTOR);
    if (1u64 << eff_scale).checked_mul(eff_factor).is_none() {
        return Err(format!(
            "2^{eff_scale} vertices x edge_factor {eff_factor} overflows the edge count"
        ));
    }
    if let Some(seed) = u64_field("seed")? {
        b = b.seed(seed);
    }
    if let Some(n) = u64_field("num_files")? {
        if n == 0 {
            return Err("num_files must be at least 1".to_string());
        }
        b = b.num_files(n as usize);
    }
    if let Some(name) = str_field("generator")? {
        let g = GeneratorKind::parse(name).ok_or_else(|| {
            format!("unknown generator {name:?} (kronecker, ppl, erdos-renyi, bter)")
        })?;
        b = b.generator(g);
    }
    if let Some(name) = str_field("gen")? {
        let g = RmatSampler::parse(name)
            .ok_or_else(|| format!("unknown gen {name:?} (faithful, linear)"))?;
        b = b.gen(g);
    }
    if let Some(on) = bool_field("permute_vertices")? {
        b = b.permute_vertices(on);
    }
    if let Some(on) = bool_field("shuffle_edges")? {
        b = b.shuffle_edges(on);
    }
    if let Some(name) = str_field("variant")? {
        let v = Variant::parse(name).ok_or_else(|| {
            format!(
                "unknown variant {name:?} ({})",
                Variant::ALL.map(|v| v.name()).join(", ")
            )
        })?;
        b = b.variant(v);
    }
    if let Some(name) = str_field("sort_key")? {
        b = b.sort_key(match name {
            "start" => SortKey::Start,
            "start-end" => SortKey::StartEnd,
            other => return Err(format!("unknown sort_key {other:?} (start, start-end)")),
        });
    }
    if let Some(budget) = u64_field("sort_budget_bytes")? {
        b = b.sort_budget_bytes(budget);
    }
    if let Some(on) = bool_field("add_diagonal_to_empty")? {
        b = b.add_diagonal_to_empty(on);
    }
    if let Some(on) = bool_field("fused")? {
        b = b.fused(on);
    }
    if let Some(c) = f64_field("damping")? {
        if !(c > 0.0 && c < 1.0) {
            return Err("damping must lie strictly between 0 and 1".to_string());
        }
        b = b.damping(c);
    }
    if let Some(n) = u64_field("iterations")? {
        if n == 0 || n > u32::MAX as u64 {
            return Err("iterations must be between 1 and 2^32-1".to_string());
        }
        b = b.iterations(n as u32);
    }
    if let Some(name) = str_field("dangling")? {
        let d = DanglingStrategy::parse(name).ok_or_else(|| {
            format!("unknown dangling strategy {name:?} (omit, redistribute, sink)")
        })?;
        b = b.dangling(d);
    }
    if let Some(tol) = f64_field("convergence_tolerance")? {
        if tol <= 0.0 {
            return Err("convergence_tolerance must be positive".to_string());
        }
        b = b.convergence_tolerance(tol);
    }
    if let Some(name) = str_field("workload")? {
        let w = Workload::parse(name).ok_or_else(|| {
            format!(
                "unknown workload {name:?} ({})",
                Workload::ALL.map(|w| w.name()).join(", ")
            )
        })?;
        b = b.workload(w);
    }
    if let Some(name) = str_field("validation")? {
        b = b.validation(match name {
            "none" => ValidationLevel::None,
            "invariants" => ValidationLevel::Invariants,
            "eigen" | "eigenvector" => ValidationLevel::Eigenvector,
            other => {
                return Err(format!(
                    "unknown validation level {other:?} (none, invariants, eigen)"
                ))
            }
        });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<PipelineConfig, String> {
        config_from_json(&Json::parse(body).expect("test body is valid JSON"))
    }

    #[test]
    fn empty_object_gives_spec_defaults() {
        let cfg = parse("{}").unwrap();
        assert_eq!(cfg.spec.scale(), 16);
        assert_eq!(cfg.damping, 0.85);
        assert_eq!(cfg.iterations, 20);
    }

    #[test]
    fn all_fields_apply() {
        let cfg = parse(
            r#"{
                "scale": 10, "edge_factor": 8, "seed": 42, "num_files": 2,
                "generator": "ppl", "permute_vertices": false,
                "shuffle_edges": true, "variant": "naive",
                "sort_key": "start-end", "sort_budget_bytes": 5000,
                "add_diagonal_to_empty": true, "damping": 0.9,
                "iterations": 5, "dangling": "sink",
                "convergence_tolerance": 1e-9, "validation": "eigen",
                "fused": true, "gen": "linear"
            }"#,
        )
        .unwrap();
        assert_eq!(cfg.spec.scale(), 10);
        assert_eq!(cfg.spec.edge_factor(), 8);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.num_files, 2);
        assert_eq!(cfg.generator, GeneratorKind::PerfectPowerLaw);
        assert!(!cfg.permute_vertices);
        assert!(cfg.shuffle_edges);
        assert_eq!(cfg.variant, Variant::Naive);
        assert_eq!(cfg.sort_key, SortKey::StartEnd);
        assert_eq!(cfg.sort_budget_bytes, Some(5000));
        assert!(cfg.add_diagonal_to_empty);
        assert_eq!(cfg.damping, 0.9);
        assert_eq!(cfg.iterations, 5);
        assert_eq!(cfg.dangling, DanglingStrategy::Sink);
        assert_eq!(cfg.convergence_tolerance, Some(1e-9));
        assert_eq!(cfg.validation, ValidationLevel::Eigenvector);
        assert!(cfg.fused);
        assert_eq!(cfg.gen, RmatSampler::Linear);
    }

    #[test]
    fn gen_changes_the_cache_identity() {
        // The two samplers emit different streams for one seed, so a
        // linear run must never be served from a faithful run's cache slot.
        let linear = parse(r#"{"scale": 9, "gen": "linear"}"#).unwrap();
        let faithful = parse(r#"{"scale": 9, "gen": "faithful"}"#).unwrap();
        let default = parse(r#"{"scale": 9}"#).unwrap();
        assert_ne!(linear.canonical_hash(), faithful.canonical_hash());
        assert_eq!(
            faithful.canonical_hash(),
            default.canonical_hash(),
            "faithful is the default sampler"
        );
        let err = parse(r#"{"gen": "fast"}"#).unwrap_err();
        assert!(err.contains("faithful") && err.contains("linear"), "{err}");
        assert!(parse(r#"{"gen": 1}"#).is_err(), "must be a string");
    }

    #[test]
    fn fused_changes_the_cache_identity() {
        let fused = parse(r#"{"scale": 9, "fused": true}"#).unwrap();
        let staged = parse(r#"{"scale": 9}"#).unwrap();
        assert_ne!(
            fused.canonical_hash(),
            staged.canonical_hash(),
            "fused and staged runs report different timings and must not share a cache slot"
        );
        assert!(parse(r#"{"fused": "yes"}"#).is_err(), "must be a boolean");
    }

    #[test]
    fn unknown_field_is_rejected_with_the_field_list() {
        let err = parse(r#"{"scal": 10}"#).unwrap_err();
        assert!(err.contains("scal"), "{err}");
        assert!(err.contains("scale"), "{err}");
    }

    #[test]
    fn wrong_types_are_rejected() {
        assert!(parse(r#"{"scale": "big"}"#).is_err());
        assert!(parse(r#"{"scale": -1}"#).is_err());
        assert!(parse(r#"{"damping": "0.9"}"#).is_err());
        assert!(parse(r#"{"permute_vertices": 1}"#).is_err());
        assert!(parse("[1,2]").is_err());
    }

    #[test]
    fn builder_invariants_become_errors_not_panics() {
        assert!(parse(r#"{"damping": 1.0}"#)
            .unwrap_err()
            .contains("damping"));
        assert!(parse(r#"{"damping": 0.0}"#).is_err());
        assert!(parse(r#"{"iterations": 0}"#).is_err());
        assert!(parse(r#"{"num_files": 0}"#).is_err());
        assert!(parse(r#"{"edge_factor": 0}"#).is_err());
        assert!(parse(r#"{"convergence_tolerance": -1.0}"#).is_err());
    }

    #[test]
    fn generator_limits_become_errors_not_panics() {
        // GraphSpec::new panics for scale >= 58 and for edge counts that
        // overflow u64; both must surface as 400-able errors here.
        assert!(parse(r#"{"scale": 58}"#).unwrap_err().contains("57"));
        assert!(parse(r#"{"scale": 60}"#).is_err());
        assert!(parse(r#"{"scale": 64}"#).is_err());
        assert!(parse(r#"{"edge_factor": 1000000000000000000}"#)
            .unwrap_err()
            .contains("overflows"));
        // Each factor in range, product overflows: 2^57 * 1024 > 2^64.
        assert!(parse(r#"{"scale": 57, "edge_factor": 1024}"#)
            .unwrap_err()
            .contains("overflows"));
        // The documented maximum itself is accepted.
        let cfg = parse(r#"{"scale": 57, "edge_factor": 2}"#).unwrap();
        assert_eq!(cfg.spec.scale(), 57);
    }

    #[test]
    fn large_seeds_survive_json_parsing_exactly() {
        // 2^53 + 1 is not representable as f64; the parser must keep
        // integral values lossless so the run uses the exact seed.
        let cfg = parse(r#"{"scale": 10, "seed": 9007199254740993}"#).unwrap();
        assert_eq!(cfg.seed, 9_007_199_254_740_993);
        let cfg = parse(&format!("{{\"seed\": {}}}", u64::MAX)).unwrap();
        assert_eq!(cfg.seed, u64::MAX);
    }

    #[test]
    fn enum_names_match_the_cli() {
        assert!(parse(r#"{"variant": "fast"}"#)
            .unwrap_err()
            .contains("optimized"));
        assert!(parse(r#"{"generator": "r-mat"}"#).is_err());
        assert!(parse(r#"{"dangling": "drop"}"#).is_err());
        assert!(parse(r#"{"sort_key": "end"}"#).is_err());
        assert!(parse(r#"{"validation": "full"}"#).is_err());
    }

    #[test]
    fn workload_parses_and_unknown_names_get_a_diagnostic() {
        let cfg = parse(r#"{"scale": 9, "workload": "bfs"}"#).unwrap();
        assert_eq!(cfg.workload, Workload::Bfs);
        let cfg = parse("{}").unwrap();
        assert_eq!(cfg.workload, Workload::PageRank, "default stays PageRank");
        // An unknown workload must 400 with the accepted list, never
        // silently fall back to PageRank.
        let err = parse(r#"{"workload": "page-rank"}"#).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        for name in ["pagerank", "bfs", "cc", "sssp", "tc"] {
            assert!(err.contains(name), "{err} should list {name}");
        }
        assert!(parse(r#"{"workload": 3}"#).is_err(), "must be a string");
    }

    #[test]
    fn input_tsv_is_not_servable() {
        let err = parse(r#"{"input_tsv": "/etc/passwd"}"#).unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
    }

    #[test]
    fn workload_changes_the_cache_identity() {
        let bfs = parse(r#"{"scale": 9, "workload": "bfs"}"#).unwrap();
        let pr = parse(r#"{"scale": 9}"#).unwrap();
        assert_ne!(
            bfs.canonical_hash(),
            pr.canonical_hash(),
            "BFS and PageRank results for the same graph must never share a cache slot"
        );
    }

    #[test]
    fn field_order_does_not_change_the_config_hash() {
        let a = parse(r#"{"scale": 9, "seed": 7, "variant": "naive"}"#).unwrap();
        let b = parse(r#"{"variant": "naive", "seed": 7, "scale": 9}"#).unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }
}
