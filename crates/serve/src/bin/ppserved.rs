//! `ppserved` — the PageRank-pipeline benchmark service daemon.
//!
//! Binds an HTTP listener in front of a worker pool and serves until a
//! `POST /shutdown` drains it. See `ppbench-serve`'s crate docs for the
//! API.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use ppbench_serve::{HttpServer, ServerConfig, Service, ServiceConfig};

const USAGE: &str = "\
ppserved - PageRank pipeline benchmark service

USAGE:
    ppserved [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>       Listen address [default: 127.0.0.1:7878]
    --workers <N>            Worker threads running pipelines [default: 2]
    --queue-depth <N>        Max queued jobs before 429 [default: 64]
    --cache-bytes <N>        In-memory result-cache byte budget
                             [default: 67108864]
    --cache-dir <DIR>        Enable the on-disk result tier in DIR
                             (results survive restarts) [default: off]
    --disk-cache-bytes <N>   On-disk result-tier byte budget
                             [default: 268435456]
    --max-scale <N>          Largest accepted scale factor [default: 22]
    --max-jobs <N>           Finished job records retained before the
                             oldest are evicted [default: 1024]
    --client-quota <N>       Max in-flight jobs per client IP; 0 = no
                             limit [default: 0]
    --max-connections <N>    Concurrent connections before new arrivals
                             get 503 [default: 16384]
    --work-root <DIR>        Scratch directory for kernel files
                             [default: <tmp>/ppbench-serve]
    -h, --help               Show this help
";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServiceConfig::default();
    let mut server_cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let outcome = match flag.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => value("--addr").map(|v| addr = v),
            "--workers" => parse_into(value("--workers"), &mut cfg.workers),
            "--queue-depth" => parse_into(value("--queue-depth"), &mut cfg.queue_depth),
            "--cache-bytes" => parse_into(value("--cache-bytes"), &mut cfg.cache_bytes),
            "--cache-dir" => value("--cache-dir").map(|v| cfg.cache_dir = Some(PathBuf::from(v))),
            "--disk-cache-bytes" => {
                parse_into(value("--disk-cache-bytes"), &mut cfg.disk_cache_bytes)
            }
            "--max-scale" => parse_into(value("--max-scale"), &mut cfg.max_scale),
            "--max-jobs" => parse_into(value("--max-jobs"), &mut cfg.max_terminal_jobs),
            "--client-quota" => parse_into(value("--client-quota"), &mut cfg.max_jobs_per_client),
            "--max-connections" => {
                parse_into(value("--max-connections"), &mut server_cfg.max_connections)
            }
            "--work-root" => value("--work-root").map(|v| cfg.work_root = PathBuf::from(v)),
            other => Err(format!("unknown flag {other:?} (try --help)")),
        };
        if let Err(message) = outcome {
            eprintln!("ppserved: {message}");
            return ExitCode::FAILURE;
        }
    }
    if cfg.workers == 0 {
        eprintln!("ppserved: --workers must be at least 1");
        return ExitCode::FAILURE;
    }

    let service = match Service::start(cfg.clone()) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("ppserved: cannot start worker pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match HttpServer::bind_with(&addr, Arc::clone(&service), server_cfg.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ppserved: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => println!(
            "ppserved listening on http://{bound} ({} workers, queue depth {}, cache {} MiB{}, max scale {}, max connections {})",
            cfg.workers,
            cfg.queue_depth,
            cfg.cache_bytes >> 20,
            match &cfg.cache_dir {
                Some(dir) => format!(" + disk tier at {}", dir.display()),
                None => String::new(),
            },
            cfg.max_scale,
            server_cfg.max_connections
        ),
        Err(_) => println!("ppserved listening on http://{addr}"),
    }
    server.run();
    println!("ppserved drained and stopped");
    ExitCode::SUCCESS
}

fn parse_into<T: std::str::FromStr>(
    value: Result<String, String>,
    slot: &mut T,
) -> Result<(), String> {
    let text = value?;
    *slot = text
        .parse()
        .map_err(|_| format!("cannot parse {text:?} as a number"))?;
    Ok(())
}
