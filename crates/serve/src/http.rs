//! Hand-rolled HTTP/1.1 server on `std::net::TcpListener`.
//!
//! Scope is deliberately narrow: one request per connection
//! (`Connection: close`), bounded header and body sizes, a per-request
//! read timeout, and a polling accept loop so `POST /shutdown` can stop
//! the server without platform-specific socket tricks. That is all a
//! benchmark-service API needs, and it keeps the crate std-only.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::job::{Job, JobState};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::request::config_from_json;
use crate::service::{CancelOutcome, Service, SubmitError};

/// Maximum bytes of request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request-body bytes (a config object is well under 1 KB).
const MAX_BODY_BYTES: usize = 64 * 1024;
/// Maximum concurrent connection-handler threads; further connections
/// are answered 503 immediately instead of spawning unboundedly.
const MAX_CONNECTIONS: usize = 64;
/// How long the accept loop sleeps between polls.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// How long the drain path waits for in-flight connections.
const CONNECTION_GRACE: Duration = Duration::from_secs(5);

/// The HTTP front end for a [`Service`].
pub struct HttpServer {
    listener: TcpListener,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    in_flight: Arc<AtomicUsize>,
    read_timeout: Duration,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) in front of
    /// `service`.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Arc<Service>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            in_flight: Arc::new(AtomicUsize::new(0)),
            read_timeout: Duration::from_secs(5),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the accept loop when set (the same flag
    /// `POST /shutdown` sets), for embedding the server in tests.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until shutdown is requested, then drains the service
    /// (finishing all accepted jobs) and returns.
    pub fn run(self) {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _peer)) => {
                    if self.in_flight.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                        let busy = Response::error(503, "too many connections; retry later");
                        // ppbench: allow(discarded-result, reason = "best-effort 503 to an overloaded peer; nothing to do if the socket is already gone")
                        let _ = stream.write_all(busy.render().as_bytes());
                        continue;
                    }
                    let service = Arc::clone(&self.service);
                    let shutdown = Arc::clone(&self.shutdown);
                    let read_timeout = self.read_timeout;
                    // The guard decrements even if the handler panics, so
                    // the drain path never waits on a ghost connection.
                    let guard = InFlightGuard::enter(&self.in_flight);
                    std::thread::spawn(move || {
                        let _guard = guard;
                        handle_connection(stream, &service, &shutdown, read_timeout);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Let in-flight request handlers finish writing their responses.
        let deadline = std::time::Instant::now() + CONNECTION_GRACE;
        while self.in_flight.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(ACCEPT_POLL);
        }
        self.service.drain();
    }
}

/// RAII decrement of the in-flight connection count.
struct InFlightGuard(Arc<AtomicUsize>);

impl InFlightGuard {
    fn enter(counter: &Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        Self(Arc::clone(counter))
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &Service,
    shutdown: &AtomicBool,
    read_timeout: Duration,
) {
    // ppbench: allow(discarded-result, reason = "socket tuning is advisory; a request on an untuned socket is still served correctly")
    let _ = stream.set_read_timeout(Some(read_timeout));
    // ppbench: allow(discarded-result, reason = "socket tuning is advisory; a request on an untuned socket is still served correctly")
    let _ = stream.set_nodelay(true);
    Metrics::inc(&service.metrics().http_requests);
    let response = match read_request(&mut stream) {
        Ok(request) => route(&request, service, shutdown),
        Err(problem) => problem,
    };
    // ppbench: allow(discarded-result, reason = "the peer may hang up before the response lands; there is no one left to report the write error to")
    let _ = stream.write_all(response.render().as_bytes());
    // ppbench: allow(discarded-result, reason = "the peer may hang up before the response lands; there is no one left to report the write error to")
    let _ = stream.flush();
}

struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    /// Raw query string (no leading `?`), empty if none.
    query: String,
    body: String,
}

/// A response under construction.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: bool,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
            retry_after: false,
        }
    }

    fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body,
            retry_after: false,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\":\"{}\"}}", json::escape(message)),
        )
    }

    fn render(&self) -> String {
        let reason = match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        let retry = if self.retry_after {
            "Retry-After: 1\r\n"
        } else {
            ""
        };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            retry,
            self.body
        )
    }
}

fn read_request(stream: &mut TcpStream) -> Result<Request, Response> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line + headers, one line at a time, with a total cap
    // enforced *while* reading — an endless line without a newline is
    // rejected once it exceeds the remaining budget, not buffered.
    let mut line = Vec::new();
    loop {
        line.clear();
        read_head_line(&mut reader, MAX_HEAD_BYTES - head.len(), &mut line)?;
        let text = std::str::from_utf8(&line)
            .map_err(|_| Response::error(400, "request head is not UTF-8"))?;
        let trimmed = text.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() && !head.is_empty() {
            break;
        }
        head.push_str(trimmed);
        head.push('\n');
    }

    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "malformed request line"));
    }

    let mut content_length = 0usize;
    for header in lines {
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response::error(413, "request body too large"));
    }

    let mut body_bytes = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body_bytes).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                Response::error(408, "timed out reading request body")
            } else {
                Response::error(400, "connection closed mid-body")
            }
        })?;
    }
    let body = String::from_utf8(body_bytes)
        .map_err(|_| Response::error(400, "request body is not UTF-8"))?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Reads one `\n`-terminated line into `line`, buffering at most `budget`
/// bytes: a line whose newline has not arrived by then is rejected with
/// 413 instead of accumulating unboundedly.
fn read_head_line(
    reader: &mut BufReader<&mut TcpStream>,
    budget: usize,
    line: &mut Vec<u8>,
) -> Result<(), Response> {
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(Response::error(408, "timed out reading request"))
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(Response::error(400, "malformed request")),
        };
        if available.is_empty() {
            return Err(Response::error(400, "connection closed mid-request"));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if line.len() + take > budget {
            return Err(Response::error(413, "request head too large"));
        }
        line.extend_from_slice(available.get(..take).unwrap_or(available));
        reader.consume(take);
        if newline.is_some() {
            return Ok(());
        }
    }
}

fn route(request: &Request, service: &Service, shutdown: &AtomicBool) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"draining\":{}}}",
                service.is_draining()
            ),
        ),
        ("GET", ["metrics"]) => Response::text(200, service.metrics().render(&service.gauges())),
        ("POST", ["runs"]) => post_run(request, service),
        ("GET", ["runs", id]) => match parse_id(id) {
            Some(id) => match service.job(id) {
                Some(job) => Response::json(200, job_json(&job)),
                None => Response::error(404, "no such job"),
            },
            None => Response::error(400, "job id must be an integer"),
        },
        ("GET", ["runs", id, "ranks"]) => get_ranks(id, &request.query, service),
        ("DELETE", ["runs", id]) => match parse_id(id) {
            Some(id) => match service.cancel(id) {
                CancelOutcome::Cancelled => {
                    Response::json(200, format!("{{\"id\":{id},\"state\":\"cancelled\"}}"))
                }
                CancelOutcome::NotCancellable(state) => Response::error(
                    409,
                    &format!("job is {} and can no longer be cancelled", state.name()),
                ),
                CancelOutcome::NotFound => Response::error(404, "no such job"),
            },
            None => Response::error(400, "job id must be an integer"),
        },
        ("POST", ["shutdown"]) => {
            shutdown.store(true, Ordering::SeqCst);
            Response::json(202, "{\"status\":\"draining\"}".to_string())
        }
        (_, ["healthz" | "metrics" | "shutdown"]) | (_, ["runs", ..]) => {
            Response::error(405, "method not allowed for this path")
        }
        _ => Response::error(404, "unknown path"),
    }
}

fn parse_id(text: &str) -> Option<u64> {
    text.parse().ok()
}

fn post_run(request: &Request, service: &Service) -> Response {
    let body = if request.body.trim().is_empty() {
        "{}".to_string()
    } else {
        request.body.clone()
    };
    let parsed = match Json::parse(&body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let config = match config_from_json(&parsed) {
        Ok(c) => c,
        Err(message) => return Response::error(400, &message),
    };
    match service.submit(config) {
        Ok(receipt) => {
            let state = if receipt.cached { "done" } else { "queued" };
            Response::json(
                202,
                format!(
                    "{{\"id\":{},\"state\":\"{}\",\"cached\":{},\"config_hash\":\"{:016x}\"}}",
                    receipt.id, state, receipt.cached, receipt.config_hash
                ),
            )
        }
        Err(SubmitError::QueueFull) => {
            let mut r = Response::error(429, "submission queue is full; retry later");
            r.retry_after = true;
            r
        }
        Err(SubmitError::Draining) => Response::error(503, "service is draining"),
        Err(e @ SubmitError::ScaleTooLarge { .. }) => Response::error(400, &e.to_string()),
    }
}

fn get_ranks(id: &str, query: &str, service: &Service) -> Response {
    let Some(id) = parse_id(id) else {
        return Response::error(400, "job id must be an integer");
    };
    let mut top = 10usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("top", value)) => match value.parse::<usize>() {
                Ok(k) if k >= 1 => top = k,
                _ => return Response::error(400, "top must be a positive integer"),
            },
            _ => return Response::error(400, &format!("unknown query parameter {pair:?}")),
        }
    }
    let Some(job) = service.job(id) else {
        return Response::error(404, "no such job");
    };
    let Some(summary) = (match job.state {
        JobState::Done => job.summary,
        _ => None,
    }) else {
        return Response::error(
            409,
            &format!(
                "job is {}; ranks exist only once it is done",
                job.state.name()
            ),
        );
    };
    let entries: Vec<String> = summary
        .top_k(top)
        .into_iter()
        .map(|(vertex, rank)| {
            // `{rank}` is Rust's shortest round-trip formatting, so parsing
            // the value back yields the identical f64; `rank_bits` makes
            // bit-level comparison possible without any parsing at all.
            format!(
                "{{\"vertex\":{vertex},\"rank\":{rank},\"rank_bits\":\"{:016x}\"}}",
                rank.to_bits()
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"id\":{id},\"top\":{top},\"vertices\":{},\"ranks\":[{}]}}",
            summary.ranks.len(),
            entries.join(",")
        ),
    )
}

fn job_json(job: &Job) -> String {
    let mut out = format!(
        "{{\"id\":{},\"state\":\"{}\",\"cached\":{},\"config_hash\":\"{:016x}\"",
        job.id,
        job.state.name(),
        job.from_cache,
        job.config_hash
    );
    if let JobState::Running(kernel) = job.state {
        out.push_str(&format!(",\"kernel\":{kernel}"));
    }
    if let Some(summary) = &job.summary {
        out.push_str(&format!(
            ",\"result\":{},\"total_seconds\":{}",
            summary.record.to_json(),
            summary.total_seconds
        ));
    }
    if let Some(error) = &job.error {
        out.push_str(&format!(",\"error\":\"{}\"", json::escape(error)));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    use ppbench_core::{PipelineConfig, RunRecord};

    use crate::job::RunSummary;

    fn job(state: JobState) -> Job {
        let config = PipelineConfig::builder().scale(4).build();
        let config_hash = config.canonical_hash();
        Job {
            id: 7,
            config,
            config_hash,
            state,
            summary: None,
            error: None,
            from_cache: false,
            submitted_at: Instant::now(),
        }
    }

    #[test]
    fn job_json_reflects_state() {
        let queued = job_json(&job(JobState::Queued));
        assert!(queued.contains("\"state\":\"queued\""), "{queued}");
        let running = job_json(&job(JobState::Running(2)));
        assert!(running.contains("\"kernel\":2"), "{running}");
        let mut failed = job(JobState::Failed);
        failed.error = Some("kernel \"3\" exploded".to_string());
        let failed_json = job_json(&failed);
        assert!(
            failed_json.contains("\\\"3\\\""),
            "error must be escaped: {failed_json}"
        );
    }

    #[test]
    fn job_json_embeds_the_run_record() {
        let mut done = job(JobState::Done);
        done.summary = Some(Arc::new(RunSummary {
            record: RunRecord {
                variant: "optimized".to_string(),
                workload: "pagerank".to_string(),
                scale: 4,
                edges: 64,
                kernels: [Some((0.5, 128.0)), None, None, None],
                validation_passed: Some(true),
                threads: None,
                checksum: None,
            },
            ranks: vec![0.25; 16],
            total_seconds: 1.5,
        }));
        let text = job_json(&done);
        assert!(text.contains("\"record\":\"ppbench-run-v1\""), "{text}");
        assert!(text.contains("\"total_seconds\":1.5"), "{text}");
        assert!(Json::parse(&text).is_ok(), "job json must parse: {text}");
    }

    #[test]
    fn response_render_is_valid_http() {
        let r = Response::json(200, "{}".to_string());
        let text = r.render();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn retry_after_header_present_on_429() {
        let mut r = Response::error(429, "full");
        r.retry_after = true;
        assert!(r.render().contains("Retry-After: 1\r\n"));
    }
}
