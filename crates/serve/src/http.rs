//! Hand-rolled nonblocking HTTP/1.1 server on `std::net::TcpListener`.
//!
//! One thread multiplexes every socket: the listener and all accepted
//! streams are in `set_nonblocking` mode and the event loop drives a
//! per-connection state machine (read head → read body → dispatch → write
//! response) each tick, so thousands of concurrent connections cost one
//! thread and a few KB each instead of a thread apiece. Pipeline execution
//! stays on the service worker pool; the loop only parses, dispatches, and
//! shuttles bytes. Scope is deliberately narrow: one request per
//! connection (`Connection: close`), bounded head and body sizes, and
//! per-phase read/write deadlines so a slow or dead peer can never pin the
//! loop. That is all a benchmark-service API needs, and it keeps the
//! crate std-only — readiness is a level-triggered scan (every registered
//! socket is polled each tick), which at benchmark scales costs microseconds
//! per tick and needs no platform epoll/kqueue bindings.

use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::job::{Job, JobState};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::request::config_from_json;
use crate::service::{CancelOutcome, Service, SubmitError};

/// Maximum bytes of request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request-body bytes (a config object is well under 1 KB).
const MAX_BODY_BYTES: usize = 64 * 1024;
/// How long the event loop sleeps when no socket made progress.
const IDLE_SLEEP: Duration = Duration::from_millis(1);
/// Per-`read` scratch buffer size.
const READ_CHUNK: usize = 4 * 1024;

/// Tunables for the event loop.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections registered at once before new arrivals are answered
    /// 503 (and, beyond twice this, dropped outright).
    pub max_connections: usize,
    /// Deadline for a complete request (head + body) to arrive.
    pub read_timeout: Duration,
    /// Deadline for the peer to accept the full response.
    pub write_timeout: Duration,
    /// After shutdown is requested, how long in-flight connections get to
    /// finish before the loop exits anyway.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 16 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// The HTTP front end for a [`Service`].
pub struct HttpServer {
    listener: TcpListener,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) in front of
    /// `service` with default [`ServerConfig`] tunables.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Arc<Service>) -> std::io::Result<Self> {
        Self::bind_with(addr, service, ServerConfig::default())
    }

    /// Binds `addr` with explicit tunables.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        service: Arc<Service>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            cfg,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the event loop when set (the same flag
    /// `POST /shutdown` sets), for embedding the server in tests.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the event loop until shutdown is requested, gives in-flight
    /// connections `drain_grace` to finish, then drains the service
    /// (finishing all accepted jobs) and returns.
    pub fn run(self) {
        let metrics = self.service.metrics();
        let dispatch_service = Arc::clone(&self.service);
        let dispatch_shutdown = Arc::clone(&self.shutdown);
        let dispatch = move |request: &Request, peer: Option<IpAddr>| {
            route(request, peer, &dispatch_service, &dispatch_shutdown)
        };
        let mut conns: Vec<Conn<TcpStream>> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let now = Instant::now();
            let draining = self.shutdown.load(Ordering::SeqCst);
            let mut progressed = false;
            if !draining {
                progressed |= self.accept_burst(&mut conns, now, metrics);
            } else if drain_deadline.is_none() {
                drain_deadline = Some(now + self.cfg.drain_grace);
            }
            conns.retain_mut(|conn| {
                match conn.drive(now, self.cfg.write_timeout, metrics, &dispatch) {
                    Drive::Keep { progressed: p } => {
                        progressed |= p;
                        true
                    }
                    Drive::Close => {
                        progressed = true;
                        false
                    }
                }
            });
            metrics
                .open_connections
                .store(conns.len() as u64, Ordering::Relaxed);
            if draining && (conns.is_empty() || drain_deadline.is_some_and(|d| now >= d)) {
                break;
            }
            if !progressed {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        metrics.open_connections.store(0, Ordering::Relaxed);
        self.service.drain();
    }

    /// Accepts every connection the listener has ready. Returns whether
    /// anything was accepted (progress for the idle-sleep heuristic).
    fn accept_burst(
        &self,
        conns: &mut Vec<Conn<TcpStream>>,
        now: Instant,
        metrics: &Metrics,
    ) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    any = true;
                    Metrics::inc(&metrics.conns_accepted);
                    // `accept` returns a *blocking* stream even from a
                    // nonblocking listener; a stream we cannot switch would
                    // stall the whole loop, so it is dropped instead.
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if conns.len() >= self.cfg.max_connections {
                        Metrics::inc(&metrics.rejected_over_capacity);
                        if conns.len() < self.cfg.max_connections.saturating_mul(2) {
                            conns.push(Conn::preloaded(
                                stream,
                                Response::error(503, "too many connections; retry later"),
                                now,
                                self.cfg.write_timeout,
                                metrics,
                            ));
                        }
                        continue;
                    }
                    // ppbench: allow(discarded-result, reason = "socket tuning is advisory; a request on an untuned socket is still served correctly")
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(
                        stream,
                        Some(peer.ip()),
                        now + self.cfg.read_timeout,
                    ));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        any
    }
}

/// What the loop should do with a connection after one drive.
enum Drive {
    /// Keep it registered; `progressed` reports whether any bytes moved.
    Keep {
        /// Whether this drive made progress (suppresses the idle sleep).
        progressed: bool,
    },
    /// Done (or dead): deregister and drop the stream.
    Close,
}

/// Where a connection is in its request/response lifecycle.
enum Phase {
    /// Accumulating request line + headers.
    ReadHead,
    /// Head parsed; accumulating `Content-Length` body bytes.
    ReadBody,
    /// Response rendered; flushing it out.
    Write,
}

/// Parsed request head.
struct Head {
    method: String,
    path: String,
    query: String,
    content_length: usize,
}

/// One connection's state machine. Generic over the stream so the
/// timeout / half-request / error paths are unit-testable with scripted
/// streams instead of real (racy) sockets.
struct Conn<S> {
    stream: S,
    peer: Option<IpAddr>,
    phase: Phase,
    inbuf: Vec<u8>,
    /// Byte offset just past the head terminator, once found.
    head_end: usize,
    head: Option<Head>,
    out: Vec<u8>,
    written: usize,
    /// Read deadline while reading, write deadline while writing.
    deadline: Instant,
}

impl<S: Read + Write> Conn<S> {
    fn new(stream: S, peer: Option<IpAddr>, read_deadline: Instant) -> Self {
        Self {
            stream,
            peer,
            phase: Phase::ReadHead,
            inbuf: Vec::new(),
            head_end: 0,
            head: None,
            out: Vec::new(),
            written: 0,
            deadline: read_deadline,
        }
    }

    /// A connection that skips straight to writing `response` (the
    /// over-capacity 503 path).
    fn preloaded(
        stream: S,
        response: Response,
        now: Instant,
        write_timeout: Duration,
        metrics: &Metrics,
    ) -> Self {
        let mut conn = Self::new(stream, None, now);
        conn.respond(response, now, write_timeout, metrics);
        conn
    }

    /// Queues `response` and switches to the write phase.
    fn respond(
        &mut self,
        response: Response,
        now: Instant,
        write_timeout: Duration,
        metrics: &Metrics,
    ) {
        Metrics::inc(&metrics.http_requests);
        self.out = response.render().into_bytes();
        self.written = 0;
        self.phase = Phase::Write;
        self.deadline = now + write_timeout;
    }

    /// Advances the state machine as far as the socket allows right now.
    fn drive(
        &mut self,
        now: Instant,
        write_timeout: Duration,
        metrics: &Metrics,
        dispatch: &dyn Fn(&Request, Option<IpAddr>) -> Response,
    ) -> Drive {
        match self.phase {
            Phase::ReadHead | Phase::ReadBody => {
                self.drive_read(now, write_timeout, metrics, dispatch)
            }
            Phase::Write => self.drive_write(now, metrics),
        }
    }

    fn drive_read(
        &mut self,
        now: Instant,
        write_timeout: Duration,
        metrics: &Metrics,
        dispatch: &dyn Fn(&Request, Option<IpAddr>) -> Response,
    ) -> Drive {
        let mut progressed = false;
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    // Peer closed before sending a complete request.
                    Metrics::inc(&metrics.http_half_requests);
                    return Drive::Close;
                }
                Ok(n) => {
                    progressed = true;
                    self.inbuf.extend_from_slice(buf.get(..n).unwrap_or(&buf));
                    self.advance(now, write_timeout, metrics, dispatch);
                    if matches!(self.phase, Phase::Write) {
                        // Try to flush in the same tick; most responses fit
                        // the socket buffer and the connection retires now.
                        return self.drive_write(now, metrics);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    Metrics::inc(&metrics.http_half_requests);
                    return Drive::Close;
                }
            }
        }
        if now >= self.deadline {
            Metrics::inc(&metrics.http_read_timeouts);
            self.respond(
                Response::error(408, "timed out reading request"),
                now,
                write_timeout,
                metrics,
            );
            return self.drive_write(now, metrics);
        }
        Drive::Keep { progressed }
    }

    /// Consumes whatever is in `inbuf`: finds/parses the head, then
    /// dispatches once the full body has arrived. Ends in `Phase::Write`
    /// when a response (success or error) is ready.
    fn advance(
        &mut self,
        now: Instant,
        write_timeout: Duration,
        metrics: &Metrics,
        dispatch: &dyn Fn(&Request, Option<IpAddr>) -> Response,
    ) {
        if matches!(self.phase, Phase::ReadHead) {
            let Some(end) = find_head_end(&self.inbuf) else {
                if self.inbuf.len() > MAX_HEAD_BYTES {
                    self.respond(
                        Response::error(413, "request head too large"),
                        now,
                        write_timeout,
                        metrics,
                    );
                }
                return;
            };
            if end > MAX_HEAD_BYTES {
                self.respond(
                    Response::error(413, "request head too large"),
                    now,
                    write_timeout,
                    metrics,
                );
                return;
            }
            let parsed = parse_head(self.inbuf.get(..end).unwrap_or(&self.inbuf));
            match parsed {
                Ok(head) if head.content_length > MAX_BODY_BYTES => {
                    self.respond(
                        Response::error(413, "request body too large"),
                        now,
                        write_timeout,
                        metrics,
                    );
                    return;
                }
                Ok(head) => {
                    self.head_end = end;
                    self.head = Some(head);
                    self.phase = Phase::ReadBody;
                }
                Err(problem) => {
                    self.respond(problem, now, write_timeout, metrics);
                    return;
                }
            }
        }
        if matches!(self.phase, Phase::ReadBody) {
            let want = self.head.as_ref().map_or(0, |h| h.content_length);
            if self.inbuf.len().saturating_sub(self.head_end) < want {
                return;
            }
            let Some(head) = self.head.take() else {
                return;
            };
            let body_bytes = self
                .inbuf
                .get(self.head_end..self.head_end + want)
                .unwrap_or(&[]);
            let response = match std::str::from_utf8(body_bytes) {
                Err(_) => Response::error(400, "request body is not UTF-8"),
                Ok(body) => {
                    let request = Request {
                        method: head.method,
                        path: head.path,
                        query: head.query,
                        body: body.to_string(),
                    };
                    dispatch(&request, self.peer)
                }
            };
            self.respond(response, now, write_timeout, metrics);
        }
    }

    fn drive_write(&mut self, now: Instant, metrics: &Metrics) -> Drive {
        let mut progressed = false;
        loop {
            let remaining = self.out.get(self.written..).unwrap_or(&[]);
            if remaining.is_empty() {
                // Fully flushed; one request per connection, so retire it.
                return Drive::Close;
            }
            match self.stream.write(remaining) {
                Ok(0) => {
                    Metrics::inc(&metrics.http_write_errors);
                    return Drive::Close;
                }
                Ok(n) => {
                    progressed = true;
                    self.written += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if now >= self.deadline {
                        // Peer is reading too slowly to take the response.
                        Metrics::inc(&metrics.http_write_timeouts);
                        return Drive::Close;
                    }
                    return Drive::Keep { progressed };
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    Metrics::inc(&metrics.http_write_errors);
                    return Drive::Close;
                }
            }
        }
    }
}

/// Index just past the first blank line (`\r\n\r\n` or `\n\n`), i.e. the
/// length of the head including its terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while let Some(&b) = buf.get(i) {
        if b == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(&b'\n'), _) => return Some(i + 2),
                (Some(&b'\r'), Some(&b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses the request line and the headers we care about. Malformed input
/// gets a 400 whose message quotes the (truncated, escaped) offending
/// request line, so a client can see exactly what the server objected to.
fn parse_head(bytes: &[u8]) -> Result<Head, Response> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| Response::error(400, "request head is not UTF-8"))?;
    let mut lines = text.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        let snippet: String = request_line.chars().take(80).collect();
        return Err(Response::error(
            400,
            &format!("malformed request line: {snippet:?}"),
        ));
    }
    let mut content_length = 0usize;
    for header in lines {
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "bad Content-Length"))?;
            }
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Head {
        method: method.to_string(),
        path,
        query,
        content_length,
    })
}

struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    /// Raw query string (no leading `?`), empty if none.
    query: String,
    body: String,
}

/// A response under construction.
#[derive(Debug)]
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: bool,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
            retry_after: false,
        }
    }

    fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body,
            retry_after: false,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\":\"{}\"}}", json::escape(message)),
        )
    }

    fn render(&self) -> String {
        let reason = match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        let retry = if self.retry_after {
            "Retry-After: 1\r\n"
        } else {
            ""
        };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            retry,
            self.body
        )
    }
}

fn route(
    request: &Request,
    peer: Option<IpAddr>,
    service: &Service,
    shutdown: &AtomicBool,
) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"draining\":{}}}",
                service.is_draining()
            ),
        ),
        ("GET", ["metrics"]) => Response::text(200, service.metrics().render(&service.gauges())),
        ("POST", ["runs"]) => post_run(request, peer, service),
        ("GET", ["runs", id]) => match parse_id(id) {
            Some(id) => match service.job(id) {
                Some(job) => Response::json(200, job_json(&job)),
                None => Response::error(404, "no such job"),
            },
            None => Response::error(400, "job id must be an integer"),
        },
        ("GET", ["runs", id, "ranks"]) => get_ranks(id, &request.query, service),
        ("DELETE", ["runs", id]) => match parse_id(id) {
            Some(id) => match service.cancel(id) {
                CancelOutcome::Cancelled => {
                    Response::json(200, format!("{{\"id\":{id},\"state\":\"cancelled\"}}"))
                }
                CancelOutcome::NotCancellable(state) => Response::error(
                    409,
                    &format!("job is {} and can no longer be cancelled", state.name()),
                ),
                CancelOutcome::NotFound => Response::error(404, "no such job"),
            },
            None => Response::error(400, "job id must be an integer"),
        },
        ("POST", ["shutdown"]) => {
            shutdown.store(true, Ordering::SeqCst);
            Response::json(202, "{\"status\":\"draining\"}".to_string())
        }
        (_, ["healthz" | "metrics" | "shutdown"]) | (_, ["runs", ..]) => {
            Response::error(405, "method not allowed for this path")
        }
        _ => Response::error(404, "unknown path"),
    }
}

fn parse_id(text: &str) -> Option<u64> {
    text.parse().ok()
}

fn post_run(request: &Request, peer: Option<IpAddr>, service: &Service) -> Response {
    let body = if request.body.trim().is_empty() {
        "{}".to_string()
    } else {
        request.body.clone()
    };
    let parsed = match Json::parse(&body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let config = match config_from_json(&parsed) {
        Ok(c) => c,
        Err(message) => return Response::error(400, &message),
    };
    match service.submit_from(config, peer) {
        Ok(receipt) => {
            let state = if receipt.cached { "done" } else { "queued" };
            Response::json(
                202,
                format!(
                    "{{\"id\":{},\"state\":\"{}\",\"cached\":{},\"coalesced\":{},\"config_hash\":\"{:016x}\"}}",
                    receipt.id, state, receipt.cached, receipt.coalesced, receipt.config_hash
                ),
            )
        }
        Err(SubmitError::QueueFull) => {
            let mut r = Response::error(429, "submission queue is full; retry later");
            r.retry_after = true;
            r
        }
        Err(SubmitError::QuotaExceeded) => {
            let mut r = Response::error(429, "client has too many jobs in flight; retry later");
            r.retry_after = true;
            r
        }
        Err(SubmitError::Draining) => Response::error(503, "service is draining"),
        Err(e @ SubmitError::ScaleTooLarge { .. }) => Response::error(400, &e.to_string()),
    }
}

fn get_ranks(id: &str, query: &str, service: &Service) -> Response {
    let Some(id) = parse_id(id) else {
        return Response::error(400, "job id must be an integer");
    };
    let mut top = 10usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("top", value)) => match value.parse::<usize>() {
                Ok(k) if k >= 1 => top = k,
                _ => return Response::error(400, "top must be a positive integer"),
            },
            _ => return Response::error(400, &format!("unknown query parameter {pair:?}")),
        }
    }
    let Some(job) = service.job(id) else {
        return Response::error(404, "no such job");
    };
    let Some(summary) = (match job.state {
        JobState::Done => job.summary,
        _ => None,
    }) else {
        return Response::error(
            409,
            &format!(
                "job is {}; ranks exist only once it is done",
                job.state.name()
            ),
        );
    };
    let entries: Vec<String> = summary
        .top_k(top)
        .into_iter()
        .map(|(vertex, rank)| {
            // `{rank}` is Rust's shortest round-trip formatting, so parsing
            // the value back yields the identical f64; `rank_bits` makes
            // bit-level comparison possible without any parsing at all.
            format!(
                "{{\"vertex\":{vertex},\"rank\":{rank},\"rank_bits\":\"{:016x}\"}}",
                rank.to_bits()
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"id\":{id},\"top\":{top},\"vertices\":{},\"ranks\":[{}]}}",
            summary.ranks.len(),
            entries.join(",")
        ),
    )
}

fn job_json(job: &Job) -> String {
    let mut out = format!(
        "{{\"id\":{},\"state\":\"{}\",\"cached\":{},\"config_hash\":\"{:016x}\"",
        job.id,
        job.state.name(),
        job.from_cache,
        job.config_hash
    );
    if let JobState::Running(kernel) = job.state {
        out.push_str(&format!(",\"kernel\":{kernel}"));
    }
    if let Some(summary) = &job.summary {
        out.push_str(&format!(
            ",\"result\":{},\"total_seconds\":{}",
            summary.record.to_json(),
            summary.total_seconds
        ));
    }
    if let Some(error) = &job.error {
        out.push_str(&format!(",\"error\":\"{}\"", json::escape(error)));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::Instant;

    use ppbench_core::{PipelineConfig, RunRecord};

    use crate::job::RunSummary;

    fn job(state: JobState) -> Job {
        let config = PipelineConfig::builder().scale(4).build();
        let config_hash = config.canonical_hash();
        Job {
            id: 7,
            config,
            config_hash,
            state,
            summary: None,
            error: None,
            from_cache: false,
            submitted_at: Instant::now(),
            client: None,
        }
    }

    #[test]
    fn job_json_reflects_state() {
        let queued = job_json(&job(JobState::Queued));
        assert!(queued.contains("\"state\":\"queued\""), "{queued}");
        let running = job_json(&job(JobState::Running(2)));
        assert!(running.contains("\"kernel\":2"), "{running}");
        let mut failed = job(JobState::Failed);
        failed.error = Some("kernel \"3\" exploded".to_string());
        let failed_json = job_json(&failed);
        assert!(
            failed_json.contains("\\\"3\\\""),
            "error must be escaped: {failed_json}"
        );
    }

    #[test]
    fn job_json_embeds_the_run_record() {
        let mut done = job(JobState::Done);
        done.summary = Some(Arc::new(RunSummary {
            record: RunRecord {
                variant: "optimized".to_string(),
                workload: "pagerank".to_string(),
                scale: 4,
                edges: 64,
                kernels: [Some((0.5, 128.0)), None, None, None],
                validation_passed: Some(true),
                threads: None,
                checksum: None,
            },
            ranks: vec![0.25; 16],
            total_seconds: 1.5,
        }));
        let text = job_json(&done);
        assert!(text.contains("\"record\":\"ppbench-run-v1\""), "{text}");
        assert!(text.contains("\"total_seconds\":1.5"), "{text}");
        assert!(Json::parse(&text).is_ok(), "job json must parse: {text}");
    }

    #[test]
    fn response_render_is_valid_http() {
        let r = Response::json(200, "{}".to_string());
        let text = r.render();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn retry_after_header_present_on_429() {
        let mut r = Response::error(429, "full");
        r.retry_after = true;
        assert!(r.render().contains("Retry-After: 1\r\n"));
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn malformed_request_line_diagnostic_quotes_the_line() {
        let err = parse_head(b"BOGUS\r\n\r\n").err().expect("must reject");
        assert_eq!(err.status, 400);
        assert!(err.body.contains("malformed request line"), "{}", err.body);
        assert!(
            err.body.contains("BOGUS"),
            "diagnostic names the line: {}",
            err.body
        );
        // An empty request line is also a 400, not a 404.
        let err = parse_head(b"\r\n\r\n").err().expect("must reject");
        assert_eq!(err.status, 400);
        // Wrong protocol version.
        let err = parse_head(b"GET / SPDY/9\r\n\r\n")
            .err()
            .expect("must reject");
        assert!(err.body.contains("SPDY/9"), "{}", err.body);
    }

    #[test]
    fn head_parses_target_and_content_length() {
        let head = parse_head(b"POST /runs?x=1 HTTP/1.1\r\nContent-Length: 12\r\n\r\n").unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/runs");
        assert_eq!(head.query, "x=1");
        assert_eq!(head.content_length, 12);
        let err = parse_head(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            .err()
            .expect("must reject");
        assert!(err.body.contains("Content-Length"), "{}", err.body);
    }

    // --- scripted-stream state machine tests ---

    /// Deterministic in-memory stream: each `read` yields the next chunk
    /// (then `WouldBlock`, or EOF once `eof`); writes follow `sink`.
    struct Scripted {
        reads: VecDeque<Vec<u8>>,
        eof: bool,
        written: Vec<u8>,
        sink: Sink,
    }

    enum Sink {
        Accept,
        Block,
    }

    impl Scripted {
        fn new(reads: &[&[u8]], eof: bool, sink: Sink) -> Self {
            Self {
                reads: reads.iter().map(|c| c.to_vec()).collect(),
                eof,
                written: Vec::new(),
                sink,
            }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.reads.pop_front() {
                Some(chunk) => {
                    assert!(chunk.len() <= buf.len(), "test chunks fit the read buffer");
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                None if self.eof => Ok(0),
                None => Err(ErrorKind::WouldBlock.into()),
            }
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self.sink {
                Sink::Accept => {
                    self.written.extend_from_slice(buf);
                    Ok(buf.len())
                }
                Sink::Block => Err(ErrorKind::WouldBlock.into()),
            }
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn echo_dispatch(request: &Request, _peer: Option<IpAddr>) -> Response {
        Response::json(
            200,
            format!(
                "{{\"path\":\"{}\",\"body_len\":{}}}",
                request.path,
                request.body.len()
            ),
        )
    }

    #[test]
    fn complete_request_dispatches_and_flushes_in_one_tick() {
        let metrics = Metrics::default();
        let stream = Scripted::new(
            &[b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"],
            false,
            Sink::Accept,
        );
        let now = Instant::now();
        let mut conn = Conn::new(stream, None, now + Duration::from_secs(5));
        let drive = conn.drive(now, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Close), "served and retired");
        let written = String::from_utf8(conn.stream.written).unwrap();
        assert!(written.starts_with("HTTP/1.1 200 OK\r\n"), "{written}");
        assert!(written.contains("\"path\":\"/healthz\""), "{written}");
        assert_eq!(metrics.http_requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn request_split_across_reads_is_reassembled() {
        let metrics = Metrics::default();
        let stream = Scripted::new(
            &[
                b"POST /runs HTT",
                b"P/1.1\r\nContent-Length: 4\r\n\r\n",
                b"ab",
            ],
            false,
            Sink::Accept,
        );
        let now = Instant::now();
        let mut conn = Conn::new(stream, None, now + Duration::from_secs(5));
        // First drive consumes all three chunks but the body is short.
        let drive = conn.drive(now, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Keep { progressed: true }));
        // The last body bytes arrive on a later tick.
        conn.stream.reads.push_back(b"cd".to_vec());
        let drive = conn.drive(now, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Close));
        let written = String::from_utf8(conn.stream.written).unwrap();
        assert!(written.contains("\"body_len\":4"), "{written}");
    }

    #[test]
    fn slow_request_times_out_with_408() {
        let metrics = Metrics::default();
        let stream = Scripted::new(&[b"GET /healthz HT"], false, Sink::Accept);
        let t0 = Instant::now();
        let mut conn = Conn::new(stream, None, t0 + Duration::from_secs(5));
        let drive = conn.drive(t0, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Keep { .. }), "before the deadline");
        let late = t0 + Duration::from_secs(6);
        let drive = conn.drive(late, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Close));
        assert_eq!(metrics.http_read_timeouts.load(Ordering::Relaxed), 1);
        let written = String::from_utf8(conn.stream.written).unwrap();
        assert!(written.starts_with("HTTP/1.1 408"), "{written}");
    }

    #[test]
    fn half_request_then_eof_is_counted_and_closed() {
        let metrics = Metrics::default();
        let stream = Scripted::new(&[b"GET /healthz"], true, Sink::Accept);
        let now = Instant::now();
        let mut conn = Conn::new(stream, None, now + Duration::from_secs(5));
        let drive = conn.drive(now, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Close));
        assert_eq!(metrics.http_half_requests.load(Ordering::Relaxed), 1);
        assert!(conn.stream.written.is_empty(), "nothing to answer");
    }

    #[test]
    fn slow_reader_hits_the_write_timeout() {
        let metrics = Metrics::default();
        let stream = Scripted::new(&[b"GET /healthz HTTP/1.1\r\n\r\n"], false, Sink::Block);
        let t0 = Instant::now();
        let mut conn = Conn::new(stream, None, t0 + Duration::from_secs(5));
        let drive = conn.drive(t0, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(
            matches!(drive, Drive::Keep { .. }),
            "response queued, peer not reading yet"
        );
        let late = t0 + Duration::from_secs(6);
        let drive = conn.drive(late, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Close));
        assert_eq!(metrics.http_write_timeouts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversized_head_is_rejected_mid_stream() {
        let metrics = Metrics::default();
        let chunk = [b'a'; READ_CHUNK];
        let chunks: Vec<&[u8]> = (0..(MAX_HEAD_BYTES / READ_CHUNK) + 2)
            .map(|_| &chunk[..])
            .collect();
        let stream = Scripted::new(&chunks, false, Sink::Accept);
        let now = Instant::now();
        let mut conn = Conn::new(stream, None, now + Duration::from_secs(5));
        let drive = conn.drive(now, Duration::from_secs(5), &metrics, &echo_dispatch);
        assert!(matches!(drive, Drive::Close));
        let written = String::from_utf8(conn.stream.written).unwrap();
        assert!(written.starts_with("HTTP/1.1 413"), "{written}");
    }
}
