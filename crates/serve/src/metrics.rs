//! Service metrics: lock-free counters and per-kernel latency histograms,
//! rendered in the Prometheus text exposition format.
//!
//! Everything is atomic so the hot paths (worker observers, request
//! handlers, the connection event loop) never contend on the service
//! mutex just to count.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds in seconds, chosen to span a scale-10
/// smoke run (sub-millisecond kernels) through a scale-22+ benchmark run.
pub const BUCKET_BOUNDS: [f64; 10] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

/// Cumulative histogram of one kernel's wall-clock seconds.
#[derive(Debug, Default)]
pub struct KernelHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS.len()],
    count: AtomicU64,
    /// Sum in nanoseconds; an integer so it can be a plain atomic add.
    sum_nanos: AtomicU64,
}

impl KernelHistogram {
    /// Records one observation.
    pub fn observe(&self, seconds: f64) {
        for (bucket, bound) in self.buckets.iter().zip(BUCKET_BOUNDS) {
            if seconds <= bound {
                bucket.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render_into(&self, out: &mut String, kernel: usize) {
        for (bucket, bound) in self.buckets.iter().zip(BUCKET_BOUNDS) {
            out.push_str(&format!(
                "ppbench_kernel_seconds_bucket{{kernel=\"{kernel}\",le=\"{bound}\"}} {}\n",
                bucket.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "ppbench_kernel_seconds_bucket{{kernel=\"{kernel}\",le=\"+Inf\"}} {}\n",
            self.count()
        ));
        out.push_str(&format!(
            "ppbench_kernel_seconds_sum{{kernel=\"{kernel}\"}} {}\n",
            self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!(
            "ppbench_kernel_seconds_count{{kernel=\"{kernel}\"}} {}\n",
            self.count()
        ));
    }
}

/// All service-level metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `POST /runs` (including cache hits and coalesced
    /// followers).
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached `Done` (including cache hits and followers).
    pub jobs_done: AtomicU64,
    /// Jobs that reached `Failed`.
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled while queued.
    pub jobs_cancelled: AtomicU64,
    /// Submissions that coalesced onto an in-flight identical config
    /// (one pipeline run, N waiters).
    pub jobs_coalesced: AtomicU64,
    /// Pipeline executions actually performed by workers. With coalescing
    /// and caching this is the ground truth for "how many times did we
    /// really run the kernels".
    pub pipeline_runs: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Submissions rejected because the client exceeded its quota of
    /// in-flight jobs.
    pub rejected_quota: AtomicU64,
    /// In-memory result-cache hits at submission time.
    pub cache_hits: AtomicU64,
    /// Result-cache misses at submission time (a pipeline run was
    /// scheduled).
    pub cache_misses: AtomicU64,
    /// Disk-tier cache hits: results revived from the on-disk store
    /// (e.g. after a restart) without re-running the pipeline.
    pub disk_cache_hits: AtomicU64,
    /// HTTP requests served, any route or status.
    pub http_requests: AtomicU64,
    /// Connections accepted by the event loop.
    pub conns_accepted: AtomicU64,
    /// Connections answered 503 (or dropped) because the event loop was
    /// at its connection capacity.
    pub rejected_over_capacity: AtomicU64,
    /// Requests that timed out while the client was still sending the
    /// head or body (answered 408).
    pub http_read_timeouts: AtomicU64,
    /// Responses dropped because the client read too slowly to accept
    /// the bytes within the write deadline.
    pub http_write_timeouts: AtomicU64,
    /// Response write failures (peer reset / broken pipe / short write).
    pub http_write_errors: AtomicU64,
    /// Connections closed by the peer before a full request arrived.
    pub http_half_requests: AtomicU64,
    /// Connections currently registered in the event loop (a gauge the
    /// loop stores each tick; atomic so `/metrics` never touches loop
    /// state).
    pub open_connections: AtomicU64,
    /// Per-kernel latency histograms, index = kernel number.
    pub kernel_seconds: [KernelHistogram; 4],
}

impl Metrics {
    /// Convenience: relaxed increment.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text format. Gauges that live in the
    /// service state (queue depth, jobs by current state, cache bytes)
    /// are passed in by the caller, which holds the lock briefly to read
    /// them.
    pub fn render(&self, gauges: &Gauges) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        out.push_str("# TYPE ppbench_jobs_submitted_total counter\n");
        out.push_str(&format!(
            "ppbench_jobs_submitted_total {}\n",
            c(&self.jobs_submitted)
        ));
        out.push_str("# TYPE ppbench_jobs_total counter\n");
        for (state, value) in [
            ("done", c(&self.jobs_done)),
            ("failed", c(&self.jobs_failed)),
            ("cancelled", c(&self.jobs_cancelled)),
        ] {
            out.push_str(&format!(
                "ppbench_jobs_total{{state=\"{state}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE ppbench_jobs_coalesced_total counter\n");
        out.push_str(&format!(
            "ppbench_jobs_coalesced_total {}\n",
            c(&self.jobs_coalesced)
        ));
        out.push_str("# TYPE ppbench_pipeline_runs_total counter\n");
        out.push_str(&format!(
            "ppbench_pipeline_runs_total {}\n",
            c(&self.pipeline_runs)
        ));
        out.push_str("# TYPE ppbench_jobs_current gauge\n");
        for (state, value) in [
            ("queued", gauges.jobs_queued),
            ("running", gauges.jobs_running),
        ] {
            out.push_str(&format!(
                "ppbench_jobs_current{{state=\"{state}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE ppbench_queue_depth gauge\n");
        out.push_str(&format!("ppbench_queue_depth {}\n", gauges.queue_depth));
        out.push_str("# TYPE ppbench_rejected_total counter\n");
        for (reason, value) in [
            ("queue_full", c(&self.rejected_queue_full)),
            ("quota", c(&self.rejected_quota)),
            ("over_capacity", c(&self.rejected_over_capacity)),
        ] {
            out.push_str(&format!(
                "ppbench_rejected_total{{reason=\"{reason}\"}} {value}\n"
            ));
        }
        // Kept under its historical name as well: dashboards and the CI
        // smoke grep predate the labeled family.
        out.push_str("# TYPE ppbench_rejected_queue_full_total counter\n");
        out.push_str(&format!(
            "ppbench_rejected_queue_full_total {}\n",
            c(&self.rejected_queue_full)
        ));
        out.push_str("# TYPE ppbench_cache_hits_total counter\n");
        out.push_str(&format!(
            "ppbench_cache_hits_total {}\n",
            c(&self.cache_hits)
        ));
        out.push_str("# TYPE ppbench_cache_misses_total counter\n");
        out.push_str(&format!(
            "ppbench_cache_misses_total {}\n",
            c(&self.cache_misses)
        ));
        out.push_str("# TYPE ppbench_disk_cache_hits_total counter\n");
        out.push_str(&format!(
            "ppbench_disk_cache_hits_total {}\n",
            c(&self.disk_cache_hits)
        ));
        out.push_str("# TYPE ppbench_cache_bytes gauge\n");
        out.push_str(&format!("ppbench_cache_bytes {}\n", gauges.cache_bytes));
        out.push_str("# TYPE ppbench_cache_entries gauge\n");
        out.push_str(&format!("ppbench_cache_entries {}\n", gauges.cache_entries));
        out.push_str("# TYPE ppbench_disk_cache_bytes gauge\n");
        out.push_str(&format!(
            "ppbench_disk_cache_bytes {}\n",
            gauges.disk_cache_bytes
        ));
        out.push_str("# TYPE ppbench_disk_cache_entries gauge\n");
        out.push_str(&format!(
            "ppbench_disk_cache_entries {}\n",
            gauges.disk_cache_entries
        ));
        out.push_str("# TYPE ppbench_http_requests_total counter\n");
        out.push_str(&format!(
            "ppbench_http_requests_total {}\n",
            c(&self.http_requests)
        ));
        out.push_str("# TYPE ppbench_connections_accepted_total counter\n");
        out.push_str(&format!(
            "ppbench_connections_accepted_total {}\n",
            c(&self.conns_accepted)
        ));
        out.push_str("# TYPE ppbench_open_connections gauge\n");
        out.push_str(&format!(
            "ppbench_open_connections {}\n",
            c(&self.open_connections)
        ));
        out.push_str("# TYPE ppbench_http_errors_total counter\n");
        for (kind, value) in [
            ("read_timeout", c(&self.http_read_timeouts)),
            ("write_timeout", c(&self.http_write_timeouts)),
            ("write_error", c(&self.http_write_errors)),
            ("half_request", c(&self.http_half_requests)),
        ] {
            out.push_str(&format!(
                "ppbench_http_errors_total{{kind=\"{kind}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE ppbench_kernel_seconds histogram\n");
        for (kernel, histogram) in self.kernel_seconds.iter().enumerate() {
            histogram.render_into(&mut out, kernel);
        }
        out
    }
}

/// Point-in-time gauge values read from the service state under its lock.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gauges {
    /// Jobs currently queued.
    pub jobs_queued: u64,
    /// Jobs currently running.
    pub jobs_running: u64,
    /// Current submission-queue depth (same as `jobs_queued`; kept as its
    /// own gauge because the queue is the backpressure surface).
    pub queue_depth: u64,
    /// Approximate bytes held by the in-memory result cache.
    pub cache_bytes: u64,
    /// Entries in the in-memory result cache.
    pub cache_entries: u64,
    /// Bytes held by the on-disk result store (0 when the tier is off).
    pub disk_cache_bytes: u64,
    /// Entries in the on-disk result store.
    pub disk_cache_entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = KernelHistogram::default();
        h.observe(0.0005);
        h.observe(0.02);
        h.observe(200.0);
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render_into(&mut out, 3);
        assert!(out.contains("kernel=\"3\",le=\"0.001\"} 1"), "{out}");
        assert!(out.contains("kernel=\"3\",le=\"0.05\"} 2"), "{out}");
        assert!(out.contains("kernel=\"3\",le=\"120\"} 2"), "{out}");
        assert!(out.contains("kernel=\"3\",le=\"+Inf\"} 3"), "{out}");
        assert!(
            out.contains("ppbench_kernel_seconds_count{kernel=\"3\"} 3"),
            "{out}"
        );
    }

    #[test]
    fn render_includes_every_family() {
        let m = Metrics::default();
        Metrics::inc(&m.jobs_submitted);
        Metrics::inc(&m.cache_hits);
        Metrics::inc(&m.jobs_coalesced);
        Metrics::inc(&m.pipeline_runs);
        Metrics::inc(&m.disk_cache_hits);
        Metrics::inc(&m.http_write_errors);
        m.open_connections.store(7, Ordering::Relaxed);
        m.kernel_seconds[0].observe(0.1);
        let text = m.render(&Gauges {
            jobs_queued: 2,
            jobs_running: 1,
            queue_depth: 2,
            cache_bytes: 4096,
            cache_entries: 3,
            disk_cache_bytes: 8192,
            disk_cache_entries: 2,
        });
        for needle in [
            "ppbench_jobs_submitted_total 1",
            "ppbench_jobs_total{state=\"done\"} 0",
            "ppbench_jobs_coalesced_total 1",
            "ppbench_pipeline_runs_total 1",
            "ppbench_jobs_current{state=\"queued\"} 2",
            "ppbench_queue_depth 2",
            "ppbench_rejected_total{reason=\"queue_full\"} 0",
            "ppbench_rejected_total{reason=\"quota\"} 0",
            "ppbench_rejected_total{reason=\"over_capacity\"} 0",
            "ppbench_rejected_queue_full_total 0",
            "ppbench_cache_hits_total 1",
            "ppbench_cache_misses_total 0",
            "ppbench_disk_cache_hits_total 1",
            "ppbench_cache_bytes 4096",
            "ppbench_cache_entries 3",
            "ppbench_disk_cache_bytes 8192",
            "ppbench_disk_cache_entries 2",
            "ppbench_http_requests_total 0",
            "ppbench_connections_accepted_total 0",
            "ppbench_open_connections 7",
            "ppbench_http_errors_total{kind=\"read_timeout\"} 0",
            "ppbench_http_errors_total{kind=\"write_error\"} 1",
            "ppbench_kernel_seconds_count{kernel=\"0\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
