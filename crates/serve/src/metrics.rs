//! Service metrics: lock-free counters and per-kernel latency histograms,
//! rendered in the Prometheus text exposition format.
//!
//! Everything is atomic so the hot paths (worker observers, request
//! handlers) never contend on the service mutex just to count.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds in seconds, chosen to span a scale-10
/// smoke run (sub-millisecond kernels) through a scale-22+ benchmark run.
pub const BUCKET_BOUNDS: [f64; 10] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

/// Cumulative histogram of one kernel's wall-clock seconds.
#[derive(Debug, Default)]
pub struct KernelHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS.len()],
    count: AtomicU64,
    /// Sum in nanoseconds; an integer so it can be a plain atomic add.
    sum_nanos: AtomicU64,
}

impl KernelHistogram {
    /// Records one observation.
    pub fn observe(&self, seconds: f64) {
        for (bucket, bound) in self.buckets.iter().zip(BUCKET_BOUNDS) {
            if seconds <= bound {
                bucket.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render_into(&self, out: &mut String, kernel: usize) {
        for (bucket, bound) in self.buckets.iter().zip(BUCKET_BOUNDS) {
            out.push_str(&format!(
                "ppbench_kernel_seconds_bucket{{kernel=\"{kernel}\",le=\"{bound}\"}} {}\n",
                bucket.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "ppbench_kernel_seconds_bucket{{kernel=\"{kernel}\",le=\"+Inf\"}} {}\n",
            self.count()
        ));
        out.push_str(&format!(
            "ppbench_kernel_seconds_sum{{kernel=\"{kernel}\"}} {}\n",
            self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!(
            "ppbench_kernel_seconds_count{{kernel=\"{kernel}\"}} {}\n",
            self.count()
        ));
    }
}

/// All service-level metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `POST /runs` (including cache hits).
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached `Done` (including cache hits).
    pub jobs_done: AtomicU64,
    /// Jobs that reached `Failed`.
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled while queued.
    pub jobs_cancelled: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Result-cache hits at submission time.
    pub cache_hits: AtomicU64,
    /// Result-cache misses at submission time.
    pub cache_misses: AtomicU64,
    /// HTTP requests served, any route or status.
    pub http_requests: AtomicU64,
    /// Per-kernel latency histograms, index = kernel number.
    pub kernel_seconds: [KernelHistogram; 4],
}

impl Metrics {
    /// Convenience: relaxed increment.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text format. Gauges that live in the
    /// service state (queue depth, jobs by current state, cache bytes)
    /// are passed in by the caller, which holds the lock briefly to read
    /// them.
    pub fn render(&self, gauges: &Gauges) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        out.push_str("# TYPE ppbench_jobs_submitted_total counter\n");
        out.push_str(&format!(
            "ppbench_jobs_submitted_total {}\n",
            c(&self.jobs_submitted)
        ));
        out.push_str("# TYPE ppbench_jobs_total counter\n");
        for (state, value) in [
            ("done", c(&self.jobs_done)),
            ("failed", c(&self.jobs_failed)),
            ("cancelled", c(&self.jobs_cancelled)),
        ] {
            out.push_str(&format!(
                "ppbench_jobs_total{{state=\"{state}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE ppbench_jobs_current gauge\n");
        for (state, value) in [
            ("queued", gauges.jobs_queued),
            ("running", gauges.jobs_running),
        ] {
            out.push_str(&format!(
                "ppbench_jobs_current{{state=\"{state}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE ppbench_queue_depth gauge\n");
        out.push_str(&format!("ppbench_queue_depth {}\n", gauges.queue_depth));
        out.push_str("# TYPE ppbench_rejected_queue_full_total counter\n");
        out.push_str(&format!(
            "ppbench_rejected_queue_full_total {}\n",
            c(&self.rejected_queue_full)
        ));
        out.push_str("# TYPE ppbench_cache_hits_total counter\n");
        out.push_str(&format!(
            "ppbench_cache_hits_total {}\n",
            c(&self.cache_hits)
        ));
        out.push_str("# TYPE ppbench_cache_misses_total counter\n");
        out.push_str(&format!(
            "ppbench_cache_misses_total {}\n",
            c(&self.cache_misses)
        ));
        out.push_str("# TYPE ppbench_cache_bytes gauge\n");
        out.push_str(&format!("ppbench_cache_bytes {}\n", gauges.cache_bytes));
        out.push_str("# TYPE ppbench_cache_entries gauge\n");
        out.push_str(&format!("ppbench_cache_entries {}\n", gauges.cache_entries));
        out.push_str("# TYPE ppbench_http_requests_total counter\n");
        out.push_str(&format!(
            "ppbench_http_requests_total {}\n",
            c(&self.http_requests)
        ));
        out.push_str("# TYPE ppbench_kernel_seconds histogram\n");
        for (kernel, histogram) in self.kernel_seconds.iter().enumerate() {
            histogram.render_into(&mut out, kernel);
        }
        out
    }
}

/// Point-in-time gauge values read from the service state under its lock.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gauges {
    /// Jobs currently queued.
    pub jobs_queued: u64,
    /// Jobs currently running.
    pub jobs_running: u64,
    /// Current submission-queue depth (same as `jobs_queued`; kept as its
    /// own gauge because the queue is the backpressure surface).
    pub queue_depth: u64,
    /// Approximate bytes held by the result cache.
    pub cache_bytes: u64,
    /// Entries in the result cache.
    pub cache_entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = KernelHistogram::default();
        h.observe(0.0005);
        h.observe(0.02);
        h.observe(200.0);
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render_into(&mut out, 3);
        assert!(out.contains("kernel=\"3\",le=\"0.001\"} 1"), "{out}");
        assert!(out.contains("kernel=\"3\",le=\"0.05\"} 2"), "{out}");
        assert!(out.contains("kernel=\"3\",le=\"120\"} 2"), "{out}");
        assert!(out.contains("kernel=\"3\",le=\"+Inf\"} 3"), "{out}");
        assert!(
            out.contains("ppbench_kernel_seconds_count{kernel=\"3\"} 3"),
            "{out}"
        );
    }

    #[test]
    fn render_includes_every_family() {
        let m = Metrics::default();
        Metrics::inc(&m.jobs_submitted);
        Metrics::inc(&m.cache_hits);
        m.kernel_seconds[0].observe(0.1);
        let text = m.render(&Gauges {
            jobs_queued: 2,
            jobs_running: 1,
            queue_depth: 2,
            cache_bytes: 4096,
            cache_entries: 3,
        });
        for needle in [
            "ppbench_jobs_submitted_total 1",
            "ppbench_jobs_total{state=\"done\"} 0",
            "ppbench_jobs_current{state=\"queued\"} 2",
            "ppbench_queue_depth 2",
            "ppbench_cache_hits_total 1",
            "ppbench_cache_misses_total 0",
            "ppbench_cache_bytes 4096",
            "ppbench_cache_entries 3",
            "ppbench_http_requests_total 0",
            "ppbench_kernel_seconds_count{kernel=\"0\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
