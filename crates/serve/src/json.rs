//! Minimal JSON support for the HTTP API: a value type, a recursive
//! descent parser for request bodies, and string escaping for responses.
//!
//! Hand-rolled to honor the workspace's no-heavy-deps ethos (no serde).
//! Response bodies are assembled with `format!` at the call sites — the
//! shapes are small and fixed — so only parsing needs a value type.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are kept in a sorted map, which makes
/// request canonicalization (field-order independence) automatic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer written without a fraction or exponent,
    /// kept lossless so values above 2^53 (e.g. 64-bit seeds) survive
    /// parsing exactly.
    Uint(u64),
    /// Any other number (fractions, exponents, negatives).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Json>),
    /// Object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integral number.
    /// Float-syntax integers above 2^53 are rejected rather than silently
    /// rounded to the nearest representable f64.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Uint(n) => Some(*n),
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(n) => Some(*n as f64),
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member names, for unknown-field diagnostics.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(members) => members.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }
}

/// Parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        let matches = self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(text.as_bytes()));
        if matches {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.consume(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if members.insert(key, value).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // API's config payloads; reject them plainly.
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = self.bytes.get(self.pos..).unwrap_or_default();
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|t| std::str::from_utf8(t).ok())
            .ok_or_else(|| self.err("malformed number"))?;
        // Plain non-negative integers stay lossless; everything else
        // (fractions, exponents, negatives, > u64::MAX) becomes f64.
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![
                Json::Uint(1),
                Json::Number(2.5),
                Json::Number(-300.0),
            ]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn key_order_does_not_matter() {
        let a = Json::parse(r#"{"x": 1, "y": 2}"#).unwrap();
        let b = Json::parse(r#"{"y": 2, "x": 1}"#).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"\\q\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn numbers_convert_conservatively() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7.5").unwrap().as_f64(), Some(7.5));
        assert_eq!(Json::parse("7").unwrap().as_f64(), Some(7.0));
        // Integer-valued float syntax still converts while exact.
        assert_eq!(Json::parse("1e2").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn integers_above_2_pow_53_are_lossless() {
        // 2^53 + 1 rounds to 2^53 as f64; the parser must not go through
        // f64 for plain integers.
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Uint(9_007_199_254_740_993));
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
        let max = u64::MAX.to_string();
        assert_eq!(Json::parse(&max).unwrap().as_u64(), Some(u64::MAX));
        // Beyond u64 the value cannot be exact; as_u64 must refuse rather
        // than saturate, and so must float-syntax integers above 2^53.
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e16").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }
}
