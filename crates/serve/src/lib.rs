//! Benchmark-as-a-service: a long-lived HTTP service over
//! [`ppbench_core::Pipeline`](ppbench_core).
//!
//! The paper frames the pipeline as a batch program; this crate turns it
//! into infrastructure. A [`Service`] owns a bounded submission queue, a
//! worker pool executing pipeline runs, and a result cache keyed by the
//! canonical hash of the configuration (the pipeline is deterministic, so
//! an identical config needs no re-run). An [`HttpServer`] exposes it
//! over a hand-rolled HTTP/1.1 API:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /runs` | Submit a config (JSON); 429 when the queue is full |
//! | `GET /runs/{id}` | Job state, timings, validation outcome |
//! | `GET /runs/{id}/ranks?top=K` | Top-K PageRank vertices, bit-exact |
//! | `DELETE /runs/{id}` | Cancel a queued job |
//! | `GET /healthz` | Liveness and drain state |
//! | `GET /metrics` | Prometheus text metrics |
//! | `POST /shutdown` | Graceful drain: finish accepted jobs, then stop |
//!
//! The front end is a single-threaded nonblocking event loop (see
//! [`http`]) that multiplexes thousands of connections; identical configs
//! submitted while a run is in flight coalesce onto it (one pipeline run,
//! N waiters); the result cache is tiered, with a byte-budgeted in-memory
//! LRU over an on-disk canonical-JSON store ([`cache::DiskCache`]) that
//! survives restarts; and per-client admission control caps in-flight
//! jobs per source IP. The [`loadgen`] module is the matching open-loop
//! load driver.
//!
//! Everything is `std`-only: no async runtime, no serde, no HTTP
//! framework. The `ppserved` binary wires a service to a listener;
//! `examples/loadgen.rs` exercises one over the wire.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod request;
pub mod service;

pub use cache::{DiskCache, ResultCache};
pub use client::{http_request, HttpResponse};
pub use http::{HttpServer, ServerConfig};
pub use job::{Job, JobId, JobState, RunSummary};
pub use json::Json;
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use metrics::{Gauges, Metrics};
pub use request::config_from_json;
pub use service::{CancelOutcome, Service, ServiceConfig, SubmitError, SubmitReceipt};
