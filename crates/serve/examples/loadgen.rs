//! Load generator for a running `ppserved`: submits a batch of runs
//! (mixed configs with deliberate duplicates, so the result cache gets
//! exercised), polls them to completion, and reports throughput and
//! submit-to-done latency percentiles.
//!
//! Usage:
//!     cargo run --release -p ppbench-serve --example loadgen -- \
//!         [--addr 127.0.0.1:7878] [--runs 20] [--scale 10]

use std::time::{Duration, Instant};

use ppbench_serve::{http_request, Json};

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut runs = 20usize;
    let mut scale = 10u32;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("loadgen: {flag} requires a value");
            std::process::exit(2);
        });
        match flag.as_str() {
            "--addr" => addr = value,
            "--runs" => runs = value.parse().expect("--runs takes a number"),
            "--scale" => scale = value.parse().expect("--scale takes a number"),
            other => {
                eprintln!("loadgen: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    // Mixed workload: half the submissions reuse seeds 0–4, guaranteeing
    // duplicate configs (cache hits) once the first runs complete; the
    // rest are unique. Alternating variants widens the mix.
    let configs: Vec<String> = (0..runs)
        .map(|i| {
            let seed = if i % 2 == 0 {
                i as u64 % 5
            } else {
                1000 + i as u64
            };
            let variant = if i % 4 == 3 { "naive" } else { "optimized" };
            format!(
                "{{\"scale\":{scale},\"edge_factor\":8,\"seed\":{seed},\"variant\":\"{variant}\"}}"
            )
        })
        .collect();

    let started = Instant::now();
    let mut pending: Vec<(u64, Instant)> = Vec::new();
    let mut rejected = 0usize;
    for body in &configs {
        // On 429 back off briefly and retry the same config.
        loop {
            let response = http_request(&addr, "POST", "/runs", Some(body))
                .unwrap_or_else(|e| panic!("cannot reach {addr}: {e}"));
            match response.status {
                202 => {
                    let parsed = Json::parse(&response.body).expect("submit response is JSON");
                    let id = parsed.get("id").and_then(Json::as_u64).expect("id");
                    pending.push((id, Instant::now()));
                    break;
                }
                429 => {
                    rejected += 1;
                    std::thread::sleep(Duration::from_millis(100));
                }
                other => panic!("unexpected status {other}: {}", response.body),
            }
        }
    }

    let mut latencies: Vec<f64> = Vec::with_capacity(pending.len());
    for (id, submitted) in pending {
        loop {
            let response =
                http_request(&addr, "GET", &format!("/runs/{id}"), None).expect("poll job");
            let parsed = Json::parse(&response.body).expect("job body is JSON");
            match parsed.get("state").and_then(Json::as_str) {
                Some("done") => {
                    latencies.push(submitted.elapsed().as_secs_f64());
                    break;
                }
                Some("failed") => panic!("job {id} failed: {}", response.body),
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    println!(
        "loadgen: {} runs at scale {scale} against {addr}",
        latencies.len()
    );
    println!(
        "  wall time        {wall:.3} s ({:.1} runs/s)",
        latencies.len() as f64 / wall
    );
    println!("  latency p50      {:.3} s", pct(0.50));
    println!("  latency p90      {:.3} s", pct(0.90));
    println!("  latency p99      {:.3} s", pct(0.99));
    println!("  429 retries      {rejected}");

    let metrics = http_request(&addr, "GET", "/metrics", None).expect("fetch metrics");
    for line in metrics.body.lines() {
        if line.starts_with("ppbench_cache_hits_total")
            || line.starts_with("ppbench_cache_misses_total")
            || line.starts_with("ppbench_jobs_total")
        {
            println!("  {line}");
        }
    }
}
