//! Load driver for a running `ppserved`: prewarms one pipeline config to
//! `Done`, then offers open-loop (or burst) load of identical `POST /runs`
//! submissions — which the server answers from the result cache or by
//! coalescing — and reports latency percentiles, achieved throughput, and
//! the server's own cache/coalescing counters.
//!
//! Usage:
//!     cargo run --release -p ppbench-serve --example loadgen -- \
//!         [--addr 127.0.0.1:7878] [--runs 200] [--scale 10] \
//!         [--rate 0] [--no-prewarm]
//!
//! `--rate 0` (the default) is burst mode: every connection opens before
//! any request is released, demonstrating concurrent-connection capacity.
//! A positive `--rate` offers that many requests per second open-loop,
//! with latency measured from each request's *scheduled* arrival.

use std::time::{Duration, Instant};

use ppbench_serve::loadgen::{run_load, LoadConfig};
use ppbench_serve::{http_request, Json};

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut runs = 200usize;
    let mut scale = 10u32;
    let mut rate = 0.0f64;
    let mut prewarm = true;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--no-prewarm" {
            prewarm = false;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("loadgen: {flag} requires a value");
            std::process::exit(2);
        });
        match flag.as_str() {
            "--addr" => addr = value,
            "--runs" => runs = value.parse().expect("--runs takes a number"),
            "--scale" => scale = value.parse().expect("--scale takes a number"),
            "--rate" => rate = value.parse().expect("--rate takes a number"),
            other => {
                eprintln!("loadgen: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let body = format!("{{\"scale\":{scale},\"edge_factor\":8,\"seed\":1}}");
    if prewarm {
        // Run the config once so the measured load hits the result cache
        // (serve-layer latency) instead of queueing pipeline runs.
        let response = http_request(&addr, "POST", "/runs", Some(&body))
            .unwrap_or_else(|e| panic!("cannot reach {addr}: {e}"));
        assert_eq!(response.status, 202, "prewarm submit: {}", response.body);
        let parsed = Json::parse(&response.body).expect("submit response is JSON");
        let id = parsed.get("id").and_then(Json::as_u64).expect("id");
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let poll = http_request(&addr, "GET", &format!("/runs/{id}"), None).expect("poll job");
            let state = Json::parse(&poll.body)
                .ok()
                .and_then(|v| v.get("state").and_then(Json::as_str).map(str::to_string));
            match state.as_deref() {
                Some("done") => break,
                Some("failed") => panic!("prewarm job failed: {}", poll.body),
                _ if Instant::now() > deadline => panic!("prewarm timed out"),
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    let mode = if rate > 0.0 {
        format!("open-loop at {rate} req/s")
    } else {
        "burst".to_string()
    };
    println!("loadgen: {runs} POST /runs (scale {scale}, {mode}) against {addr}");
    let report = run_load(&LoadConfig {
        addr: addr.clone(),
        method: "POST".to_string(),
        path: "/runs".to_string(),
        body,
        requests: runs,
        rate,
        timeout: Duration::from_secs(30),
        max_open: 16 * 1024,
    })
    .expect("load run");

    println!(
        "  completed        {}/{} ({} errors)",
        report.completed, report.attempted, report.errors
    );
    println!(
        "  wall time        {:.3} s ({:.0} req/s achieved)",
        report.seconds, report.achieved_rps
    );
    println!("  max concurrent   {}", report.max_concurrent);
    println!("  latency p50      {:.3} ms", report.p50_ms);
    println!("  latency p90      {:.3} ms", report.p90_ms);
    println!("  latency p99      {:.3} ms", report.p99_ms);
    println!("  latency max      {:.3} ms", report.max_ms);
    for (status, count) in &report.statuses {
        println!("  status {status}     {count}");
    }

    let metrics = http_request(&addr, "GET", "/metrics", None).expect("fetch metrics");
    for line in metrics.body.lines() {
        if line.starts_with("ppbench_cache_hits_total")
            || line.starts_with("ppbench_cache_misses_total")
            || line.starts_with("ppbench_disk_cache_hits_total")
            || line.starts_with("ppbench_jobs_coalesced_total")
            || line.starts_with("ppbench_pipeline_runs_total")
            || line.starts_with("ppbench_jobs_total")
        {
            println!("  {line}");
        }
    }
}
