//! End-to-end tests: a real `Service` behind a real `HttpServer` on an
//! ephemeral port, driven over TCP with the crate's own client — the
//! same path `ppserved` and the CI smoke job use.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppbench_core::{Pipeline, PipelineConfig};
use ppbench_serve::{http_request, HttpServer, Json, Service, ServiceConfig};

struct TestServer {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(workers: usize, queue_depth: usize) -> Self {
        let service = Arc::new(
            Service::start(ServiceConfig {
                workers,
                queue_depth,
                cache_bytes: 16 << 20,
                max_scale: 10,
                max_terminal_jobs: 256,
                work_root: std::env::temp_dir().join(format!(
                    "ppbench-serve-e2e-{}-{:?}",
                    std::process::id(),
                    std::thread::current().id()
                )),
                ..ServiceConfig::default()
            })
            .expect("service starts"),
        );
        let server = HttpServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let thread = std::thread::spawn(move || server.run());
        Self {
            addr,
            thread: Some(thread),
        }
    }

    fn get(&self, path: &str) -> (u16, String) {
        let r = http_request(self.addr, "GET", path, None).expect("GET");
        (r.status, r.body)
    }

    fn post(&self, path: &str, body: &str) -> (u16, String) {
        let r = http_request(self.addr, "POST", path, Some(body)).expect("POST");
        (r.status, r.body)
    }

    fn submit(&self, body: &str) -> (u16, Json) {
        let (status, text) = self.post("/runs", body);
        (status, Json::parse(&text).expect("JSON response"))
    }

    fn wait_done(&self, id: u64) -> Json {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = self.get(&format!("/runs/{id}"));
            assert_eq!(status, 200, "{body}");
            let parsed = Json::parse(&body).expect("job JSON");
            match parsed.get("state").and_then(Json::as_str) {
                Some("done") => return parsed,
                Some("failed") => panic!("job {id} failed: {body}"),
                _ => {
                    assert!(Instant::now() < deadline, "job {id} did not finish");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    fn shutdown(&mut self) {
        let (status, _) = self.post("/shutdown", "");
        assert_eq!(status, 202);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread exits cleanly");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            // Best-effort shutdown if a test forgot (or panicked).
            let _ = http_request(self.addr, "POST", "/shutdown", Some(""));
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[test]
fn healthz_and_metrics_respond() {
    let server = TestServer::start(1, 4);
    let (status, body) = server.get("/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, metrics) = server.get("/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("ppbench_queue_depth"), "{metrics}");
    assert!(
        metrics.contains("ppbench_kernel_seconds_bucket"),
        "{metrics}"
    );
}

#[test]
fn submit_poll_and_fetch_ranks_end_to_end() {
    let server = TestServer::start(2, 8);
    let (status, receipt) = server.submit(r#"{"scale": 8, "edge_factor": 4, "seed": 42}"#);
    assert_eq!(status, 202, "{receipt:?}");
    let id = receipt.get("id").and_then(Json::as_u64).expect("id");
    assert_eq!(receipt.get("cached"), Some(&Json::Bool(false)));

    let job = server.wait_done(id);
    let result = job.get("result").expect("done job embeds the run record");
    assert_eq!(
        result.get("record").and_then(Json::as_str),
        Some("ppbench-run-v1")
    );
    assert_eq!(result.get("scale").and_then(Json::as_u64), Some(8));
    assert_eq!(
        result.get("validation_passed"),
        Some(&Json::Bool(true)),
        "default validation level must pass"
    );

    let (status, body) = server.get(&format!("/runs/{id}/ranks?top=5"));
    assert_eq!(status, 200, "{body}");
    let ranks = Json::parse(&body).expect("ranks JSON");
    let Json::Array(entries) = ranks.get("ranks").expect("ranks array") else {
        panic!("ranks is not an array: {body}");
    };
    assert_eq!(entries.len(), 5);

    // Bit-identical to a serial in-process run of the same config.
    let work = std::env::temp_dir().join(format!("ppbench-serve-serial-{}", std::process::id()));
    let config = PipelineConfig::builder()
        .scale(8)
        .edge_factor(4)
        .seed(42)
        .build();
    let serial = Pipeline::new(config, &work).run().expect("serial run");
    let _ = std::fs::remove_dir_all(&work);
    let expected = serial.kernel3.expect("kernel 3 ran").top_k(5);
    for (entry, (vertex, rank)) in entries.iter().zip(expected) {
        assert_eq!(entry.get("vertex").and_then(Json::as_u64), Some(vertex));
        let bits = entry
            .get("rank_bits")
            .and_then(Json::as_str)
            .expect("rank_bits");
        assert_eq!(
            bits,
            format!("{:016x}", rank.to_bits()),
            "served rank must be bit-identical to the serial run"
        );
    }
}

#[test]
fn duplicate_config_is_served_from_cache() {
    let server = TestServer::start(1, 8);
    let body = r#"{"scale": 7, "edge_factor": 4, "seed": 9}"#;
    let (_, first) = server.submit(body);
    let first_id = first.get("id").and_then(Json::as_u64).unwrap();
    server.wait_done(first_id);

    // Field order must not defeat the cache.
    let (_, second) = server.submit(r#"{"seed": 9, "edge_factor": 4, "scale": 7}"#);
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second:?}");
    assert_eq!(
        first.get("config_hash"),
        second.get("config_hash"),
        "same config must hash the same regardless of field order"
    );
    let second_id = second.get("id").and_then(Json::as_u64).unwrap();
    let (status, cached_ranks) = server.get(&format!("/runs/{second_id}/ranks?top=3"));
    assert_eq!(status, 200);
    let (_, fresh_ranks) = server.get(&format!("/runs/{first_id}/ranks?top=3"));
    assert_eq!(
        cached_ranks.replace(&format!("\"id\":{second_id}"), ""),
        fresh_ranks.replace(&format!("\"id\":{first_id}"), ""),
        "cached ranks must be identical to the original run's"
    );

    let (_, metrics) = server.get("/metrics");
    assert!(
        metrics.lines().any(|l| l == "ppbench_cache_hits_total 1"),
        "{metrics}"
    );

    // A different seed is a different config: cache miss.
    let (_, third) = server.submit(r#"{"scale": 7, "edge_factor": 4, "seed": 10}"#);
    assert_eq!(third.get("cached"), Some(&Json::Bool(false)));
    assert_ne!(first.get("config_hash"), third.get("config_hash"));
}

#[test]
fn full_queue_returns_429_with_retry_after() {
    // One worker, zero queue slots: while the worker is busy, any
    // further submission must be rejected with 429.
    let server = TestServer::start(1, 0);
    let mut saw_429 = false;
    for attempt in 0..20 {
        let body = format!(r#"{{"scale": 8, "edge_factor": 8, "seed": {attempt}}}"#);
        let response = http_request(server.addr, "POST", "/runs", Some(&body)).unwrap();
        if response.status == 429 {
            assert_eq!(response.header("retry-after"), Some("1"));
            assert!(response.body.contains("queue"), "{}", response.body);
            saw_429 = true;
            break;
        }
        assert_eq!(response.status, 202, "{}", response.body);
    }
    assert!(
        saw_429,
        "a zero-depth queue must reject a concurrent submission"
    );
}

#[test]
fn cancel_queued_job_and_reject_cancel_of_done_job() {
    let server = TestServer::start(1, 8);
    // Occupy the single worker, then queue another job behind it.
    let (_, busy) = server.submit(r#"{"scale": 9, "edge_factor": 8, "seed": 1}"#);
    let busy_id = busy.get("id").and_then(Json::as_u64).unwrap();
    let (_, queued) = server.submit(r#"{"scale": 9, "edge_factor": 8, "seed": 2}"#);
    let queued_id = queued.get("id").and_then(Json::as_u64).unwrap();

    let r = http_request(server.addr, "DELETE", &format!("/runs/{queued_id}"), None).unwrap();
    if r.status == 200 {
        let (status, body) = server.get(&format!("/runs/{queued_id}"));
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"cancelled\""), "{body}");
    } else {
        // The worker may have grabbed the second job already (tiny runs);
        // then cancellation must be refused as a conflict.
        assert_eq!(r.status, 409, "{}", r.body);
    }

    server.wait_done(busy_id);
    let r = http_request(server.addr, "DELETE", &format!("/runs/{busy_id}"), None).unwrap();
    assert_eq!(r.status, 409, "done jobs cannot be cancelled: {}", r.body);

    let r = http_request(server.addr, "DELETE", "/runs/99999", None).unwrap();
    assert_eq!(r.status, 404);
}

#[test]
fn bad_requests_get_400s_not_500s() {
    let server = TestServer::start(1, 4);
    let (status, body) = server.post("/runs", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = server.post("/runs", r#"{"scal": 10}"#);
    assert_eq!(status, 400);
    assert!(body.contains("scal"), "{body}");
    let (status, body) = server.post("/runs", r#"{"scale": 11}"#);
    assert_eq!(status, 400, "over max_scale: {body}");
    assert!(body.contains("exceeds"), "{body}");
    let (status, _) = server.get("/runs/not-a-number");
    assert_eq!(status, 400);
    let (status, _) = server.get("/nope");
    assert_eq!(status, 404);
    let (status, _) = server.post("/healthz", "");
    assert_eq!(status, 405);
    let (status, _) = server.get("/runs/1/ranks?top=0");
    assert_eq!(status, 400);
}

#[test]
fn generator_limit_violations_get_400_not_a_dropped_connection() {
    // These configs would panic GraphSpec::new if they reached the
    // builder; the server must answer 400 and stay healthy.
    let server = TestServer::start(1, 4);
    for body in [
        r#"{"scale": 60}"#,
        r#"{"edge_factor": 1000000000000000000}"#,
        r#"{"scale": 57, "edge_factor": 1024}"#,
    ] {
        let (status, reply) = server.post("/runs", body);
        assert_eq!(status, 400, "{body} -> {reply}");
    }
    let (status, _) = server.get("/healthz");
    assert_eq!(status, 200, "server must survive hostile configs");
}

#[test]
fn endless_header_line_is_rejected_not_buffered() {
    use std::io::{Read, Write};
    let server = TestServer::start(1, 4);
    let mut stream = std::net::TcpStream::connect(server.addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nX-Junk: ")
        .expect("head");
    // Stream far more than the 16 KiB head budget with no newline; the
    // server must answer 413 mid-line instead of buffering forever.
    let chunk = [b'a'; 4096];
    let mut rejected = false;
    for _ in 0..32 {
        if stream.write_all(&chunk).is_err() {
            // The server already responded and closed; that's a pass too.
            rejected = true;
            break;
        }
    }
    let mut reply = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
            // A reset is the server slamming the door on our junk: fine.
            Err(_) => break,
        }
    }
    let reply = String::from_utf8_lossy(&reply);
    if !rejected && !reply.is_empty() {
        assert!(
            reply.starts_with("HTTP/1.1 413"),
            "expected 413, not a timeout or buffered read: {reply}"
        );
    }
    let (status, _) = server.get("/healthz");
    assert_eq!(status, 200, "server must keep serving afterwards");
}

#[test]
fn ranks_of_unfinished_job_is_a_conflict() {
    let server = TestServer::start(1, 8);
    let (_, first) = server.submit(r#"{"scale": 9, "edge_factor": 8, "seed": 77}"#);
    let first_id = first.get("id").and_then(Json::as_u64).unwrap();
    let (_, second) = server.submit(r#"{"scale": 9, "edge_factor": 8, "seed": 78}"#);
    let second_id = second.get("id").and_then(Json::as_u64).unwrap();
    // The second job is queued or at best running; its ranks don't exist.
    let r = http_request(
        server.addr,
        "GET",
        &format!("/runs/{second_id}/ranks"),
        None,
    )
    .unwrap();
    assert!(
        r.status == 409 || r.status == 200,
        "unexpected status {}: {}",
        r.status,
        r.body
    );
    server.wait_done(first_id);
    server.wait_done(second_id);
}

#[test]
fn graceful_shutdown_finishes_accepted_jobs() {
    let mut server = TestServer::start(2, 16);
    let ids: Vec<u64> = (0..4)
        .map(|seed| {
            let (status, receipt) = server.submit(&format!(
                r#"{{"scale": 8, "edge_factor": 4, "seed": {seed}}}"#
            ));
            assert_eq!(status, 202);
            receipt.get("id").and_then(Json::as_u64).unwrap()
        })
        .collect();
    server.shutdown();
    // The server thread has joined: every accepted job must have finished.
    // The listener is gone, so verify through a fresh service? No — the
    // drain contract is observable precisely because join returned only
    // after Service::drain completed, which waits for queue + running to
    // empty. Reaching this line is the assertion; ids documents intent.
    assert_eq!(ids.len(), 4);
}

#[test]
fn mixed_concurrent_load_all_reach_done_with_cache_hits() {
    // The ISSUE's E2E shape, scaled for a unit-test budget: ≥20 concurrent
    // submissions with duplicates, two workers, everything reaches Done,
    // and every duplicate is deduplicated — either by a cache hit (the
    // original already finished) or by coalescing onto the in-flight run.
    let server = TestServer::start(2, 32);
    let mut ids = Vec::new();
    for i in 0..20u64 {
        let seed = i % 6; // guarantees duplicates
        let body = format!(r#"{{"scale": 7, "edge_factor": 4, "seed": {seed}}}"#);
        let (status, receipt) = server.submit(&body);
        assert_eq!(status, 202, "submission {i} rejected: {receipt:?}");
        ids.push(receipt.get("id").and_then(Json::as_u64).unwrap());
    }
    for id in ids {
        server.wait_done(id);
    }
    let (_, metrics) = server.get("/metrics");
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("{name} counter present:\n{metrics}"))
    };
    let deduped = counter("ppbench_cache_hits_total ") + counter("ppbench_jobs_coalesced_total ");
    assert!(
        deduped > 0,
        "duplicate configs must hit the cache or coalesce:\n{metrics}"
    );
    assert!(
        counter("ppbench_pipeline_runs_total ") <= 6,
        "at most one pipeline run per distinct config:\n{metrics}"
    );
    let done: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("ppbench_jobs_total{state=\"done\"} "))
        .and_then(|v| v.parse().ok())
        .expect("done counter present");
    assert_eq!(done, 20, "{metrics}");
}
