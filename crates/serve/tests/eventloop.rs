//! Event-loop front-end behavior over real sockets: concurrency beyond
//! the old thread-per-connection cap, slow-client timeouts, half-request
//! accounting, malformed-line diagnostics, and shutdown draining.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppbench_serve::loadgen::{run_load, LoadConfig};
use ppbench_serve::{http_request, HttpServer, ServerConfig, Service, ServiceConfig};

struct TestServer {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(server_cfg: ServerConfig) -> Self {
        let service = Arc::new(
            Service::start(ServiceConfig {
                workers: 1,
                queue_depth: 16,
                work_root: std::env::temp_dir().join(format!(
                    "ppbench-eventloop-{}-{:?}",
                    std::process::id(),
                    std::thread::current().id()
                )),
                ..ServiceConfig::default()
            })
            .expect("service starts"),
        );
        let server =
            HttpServer::bind_with("127.0.0.1:0", service, server_cfg).expect("bind ephemeral");
        let addr = server.local_addr().expect("bound address");
        let thread = std::thread::spawn(move || server.run());
        Self {
            addr,
            thread: Some(thread),
        }
    }

    fn metrics(&self) -> String {
        http_request(self.addr, "GET", "/metrics", None)
            .expect("GET /metrics")
            .body
    }

    fn counter(&self, name: &str) -> u64 {
        self.metrics()
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("counter {name} missing"))
    }

    fn shutdown(&mut self) {
        let r = http_request(self.addr, "POST", "/shutdown", Some("")).expect("POST /shutdown");
        assert_eq!(r.status, 202);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread exits");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            let _ = http_request(self.addr, "POST", "/shutdown", Some(""));
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// Read until EOF with a generous client-side timeout.
fn read_reply(stream: &mut TcpStream) -> String {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    let mut reply = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&reply).into_owned()
}

#[test]
fn burst_of_256_connections_is_served_concurrently() {
    // The old thread-per-connection front end hard-capped at 64 concurrent
    // connections; the event loop must hold a 4x burst open at once and
    // answer every request.
    let mut server = TestServer::start(ServerConfig::default());
    let report = run_load(&LoadConfig {
        addr: server.addr.to_string(),
        requests: 256,
        ..LoadConfig::default()
    })
    .expect("burst load");
    assert_eq!(report.attempted, 256);
    assert_eq!(report.errors, 0, "no connection may be dropped: {report:?}");
    assert_eq!(report.completed, 256);
    assert_eq!(report.status_count(200), 256, "{report:?}");
    assert!(
        report.max_concurrent >= 256,
        "burst mode must hold all connections open together: {report:?}"
    );
    server.shutdown();
}

#[test]
fn slow_client_is_timed_out_with_408() {
    let mut server = TestServer::start(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let started = Instant::now();
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    // A head with no terminating blank line: the server must not wait
    // forever for the rest.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nX-Slow: yes\r\n")
        .expect("partial head");
    let reply = read_reply(&mut stream);
    assert!(
        reply.starts_with("HTTP/1.1 408"),
        "expected a 408 for the stalled request: {reply:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the timeout must be prompt"
    );
    assert!(server.counter("ppbench_http_errors_total{kind=\"read_timeout\"} ") >= 1);
    // The event loop keeps serving other clients afterwards.
    let r = http_request(server.addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(r.status, 200);
    server.shutdown();
}

#[test]
fn half_request_then_disconnect_is_counted_not_fatal() {
    let mut server = TestServer::start(ServerConfig::default());
    {
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        stream
            .write_all(b"POST /runs HTTP/1.1\r\nCont")
            .expect("half");
        // Dropping the stream closes it mid-request.
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.counter("ppbench_http_errors_total{kind=\"half_request\"} ") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "half request was never accounted: {}",
            server.metrics()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let r = http_request(server.addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(r.status, 200, "server survives abandoned connections");
    server.shutdown();
}

#[test]
fn malformed_request_line_gets_a_quoted_400_diagnostic() {
    let mut server = TestServer::start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream.write_all(b"BOGUS\r\n\r\n").expect("write");
    let reply = read_reply(&mut stream);
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply:?}");
    assert!(
        reply.contains("malformed request line") && reply.contains("BOGUS"),
        "the diagnostic must quote the offending line: {reply:?}"
    );

    // A bogus protocol version is malformed too.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream.write_all(b"GET / SPDY/9\r\n\r\n").expect("write");
    let reply = read_reply(&mut stream);
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply:?}");
    assert!(reply.contains("SPDY/9"), "{reply:?}");
    server.shutdown();
}

#[test]
fn connections_in_flight_at_shutdown_still_get_their_response() {
    let mut server = TestServer::start(ServerConfig::default());
    // Open a connection and send only part of the request.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n")
        .expect("partial head");

    // Trigger the drain from a second connection.
    let r = http_request(server.addr, "POST", "/shutdown", Some("")).expect("shutdown");
    assert_eq!(r.status, 202);

    // Complete the stalled request within the drain grace period: the
    // event loop must still answer it before exiting.
    stream.write_all(b"\r\n").expect("finish head");
    let reply = read_reply(&mut stream);
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "in-flight request must be served during drain: {reply:?}"
    );
    if let Some(thread) = server.thread.take() {
        thread.join().expect("server drains and exits");
    }
}
