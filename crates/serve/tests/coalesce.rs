//! Request coalescing, per-client admission control, and disk-tier
//! restart survival — the service-level contracts added alongside the
//! event-loop front end.

use std::net::{IpAddr, Ipv4Addr};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ppbench_core::PipelineConfig;
use ppbench_serve::{CancelOutcome, JobState, Service, ServiceConfig, SubmitError};

fn test_config(tag: &str, workers: usize, queue_depth: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_depth,
        work_root: std::env::temp_dir().join(format!(
            "ppbench-coalesce-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )),
        ..ServiceConfig::default()
    }
}

fn config(scale: u32, seed: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .scale(scale)
        .edge_factor(4)
        .seed(seed)
        .build()
}

fn client(last_octet: u8) -> Option<IpAddr> {
    Some(IpAddr::V4(Ipv4Addr::new(10, 0, 0, last_octet)))
}

#[test]
fn duplicates_of_an_in_flight_config_coalesce_onto_one_run() {
    // One worker, occupied by a blocker: the leader sits in the queue, so
    // duplicates submitted behind it must coalesce instead of queueing.
    let service = Service::start(test_config("dup", 1, 32)).expect("service starts");
    let blocker = service.submit(config(9, 999)).expect("blocker accepted");
    let leader = service.submit(config(8, 1)).expect("leader accepted");
    assert!(!leader.cached && !leader.coalesced);

    let follower_a = service.submit(config(8, 1)).expect("follower accepted");
    let follower_b = service.submit(config(8, 1)).expect("follower accepted");
    assert!(follower_a.coalesced, "duplicate must coalesce, not queue");
    assert!(follower_b.coalesced);
    assert_eq!(leader.config_hash, follower_a.config_hash);
    assert!(!follower_a.cached, "coalescing is not a cache hit");

    for id in [blocker.id, leader.id, follower_a.id, follower_b.id] {
        let job = service
            .wait(id, Duration::from_secs(60))
            .expect("job finishes");
        assert_eq!(job.state, JobState::Done, "job {id}");
    }

    // Exactly two pipeline executions: the blocker and the leader. The
    // followers rode along.
    let metrics = service.metrics();
    assert_eq!(metrics.pipeline_runs.load(Ordering::Relaxed), 2);
    assert_eq!(metrics.jobs_coalesced.load(Ordering::Relaxed), 2);
    assert_eq!(metrics.jobs_done.load(Ordering::Relaxed), 4);
    assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 0);

    // All members of the party share the one stored summary, so their
    // ranks are bit-identical by construction.
    let a = service.job(leader.id).unwrap().summary.unwrap();
    let b = service.job(follower_a.id).unwrap().summary.unwrap();
    let c = service.job(follower_b.id).unwrap().summary.unwrap();
    assert!(Arc::ptr_eq(&a, &b), "followers share the leader's summary");
    assert!(Arc::ptr_eq(&a, &c));
    service.drain();
}

#[test]
fn cancelling_the_leader_promotes_the_first_follower() {
    let service = Service::start(test_config("promote", 1, 32)).expect("service starts");
    let blocker = service.submit(config(9, 999)).expect("blocker accepted");
    let leader = service.submit(config(8, 2)).expect("leader accepted");
    let follower = service.submit(config(8, 2)).expect("follower accepted");
    assert!(follower.coalesced);

    assert_eq!(service.cancel(leader.id), CancelOutcome::Cancelled);
    assert_eq!(
        service.job(leader.id).unwrap().state,
        JobState::Cancelled,
        "the cancelled leader is terminal"
    );

    // The follower inherited the queue slot: it must still reach Done.
    let job = service
        .wait(follower.id, Duration::from_secs(60))
        .expect("promoted follower finishes");
    assert_eq!(job.state, JobState::Done);
    service
        .wait(blocker.id, Duration::from_secs(60))
        .expect("blocker finishes");
    assert_eq!(
        service.metrics().pipeline_runs.load(Ordering::Relaxed),
        2,
        "blocker + promoted follower"
    );
    service.drain();
}

#[test]
fn cancelling_a_follower_leaves_the_leader_running() {
    let service = Service::start(test_config("follower-cancel", 1, 32)).expect("service starts");
    let blocker = service.submit(config(9, 999)).expect("blocker accepted");
    let leader = service.submit(config(8, 3)).expect("leader accepted");
    let follower = service.submit(config(8, 3)).expect("follower accepted");
    assert!(follower.coalesced);

    assert_eq!(service.cancel(follower.id), CancelOutcome::Cancelled);
    assert_eq!(service.job(follower.id).unwrap().state, JobState::Cancelled);

    let job = service
        .wait(leader.id, Duration::from_secs(60))
        .expect("leader finishes");
    assert_eq!(job.state, JobState::Done, "leader unaffected");
    service
        .wait(blocker.id, Duration::from_secs(60))
        .expect("blocker finishes");
    service.drain();
}

#[test]
fn per_client_quota_caps_in_flight_jobs_and_releases_on_completion() {
    let mut cfg = test_config("quota", 1, 32);
    cfg.max_jobs_per_client = 2;
    let service = Service::start(cfg).expect("service starts");

    // Client A fills its quota with two distinct configs.
    let first = service
        .submit_from(config(8, 10), client(1))
        .expect("first accepted");
    let second = service
        .submit_from(config(8, 11), client(1))
        .expect("second accepted");
    assert_eq!(
        service.submit_from(config(8, 12), client(1)),
        Err(SubmitError::QuotaExceeded),
        "third in-flight job from the same client must be rejected"
    );

    // Another client and in-process submissions are unaffected.
    let other = service
        .submit_from(config(8, 13), client(2))
        .expect("different client admitted");
    let local = service
        .submit(config(8, 14))
        .expect("in-process submissions are never quota-limited");

    for id in [first.id, second.id, other.id, local.id] {
        service.wait(id, Duration::from_secs(60)).expect("finishes");
    }

    // Quota charges are released when jobs reach a terminal state.
    service
        .submit_from(config(8, 12), client(1))
        .expect("quota released after completion");
    assert!(
        service.metrics().rejected_quota.load(Ordering::Relaxed) >= 1,
        "quota rejections must be counted"
    );
    service.drain();
}

#[test]
fn disk_tier_serves_cached_results_across_a_service_restart() {
    let cache_dir: PathBuf = std::env::temp_dir().join(format!(
        "ppbench-restart-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut cfg = test_config("restart-a", 1, 8);
    cfg.cache_dir = Some(cache_dir.clone());
    let first_run;
    {
        let service = Service::start(cfg.clone()).expect("first service starts");
        let receipt = service.submit(config(8, 42)).expect("accepted");
        assert!(!receipt.cached);
        let job = service
            .wait(receipt.id, Duration::from_secs(60))
            .expect("finishes");
        assert_eq!(job.state, JobState::Done);
        first_run = job.summary.expect("done job has a summary");
        service.drain();
    }

    // A brand-new service over the same directory: the in-memory cache is
    // empty, so the hit must come from the disk tier.
    cfg.work_root = std::env::temp_dir().join(format!(
        "ppbench-restart-b-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let service = Service::start(cfg).expect("second service starts");
    let receipt = service.submit(config(8, 42)).expect("accepted");
    assert!(
        receipt.cached,
        "identical config must be served from the disk tier after restart"
    );
    let job = service.job(receipt.id).expect("job exists");
    assert_eq!(job.state, JobState::Done, "disk hits are immediately done");
    assert!(job.from_cache);

    let metrics = service.metrics();
    assert_eq!(metrics.disk_cache_hits.load(Ordering::Relaxed), 1);
    assert_eq!(
        metrics.pipeline_runs.load(Ordering::Relaxed),
        0,
        "no pipeline ran in the second service"
    );

    let revived = job.summary.expect("summary restored from disk");
    assert_eq!(revived.ranks.len(), first_run.ranks.len());
    assert!(
        revived
            .ranks
            .iter()
            .zip(&first_run.ranks)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "ranks must round-trip through the disk tier bit-identically"
    );
    assert_eq!(revived.record.to_json(), first_run.record.to_json());
    service.drain();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn late_duplicate_after_completion_is_a_cache_hit_not_a_coalesce() {
    let service = Service::start(test_config("late", 1, 8)).expect("service starts");
    let first = service.submit(config(8, 77)).expect("accepted");
    service
        .wait(first.id, Duration::from_secs(60))
        .expect("finishes");
    let second = service.submit(config(8, 77)).expect("accepted");
    assert!(second.cached, "completed config must hit the cache");
    assert!(!second.coalesced, "nothing in flight to coalesce with");
    assert_eq!(service.metrics().jobs_coalesced.load(Ordering::Relaxed), 0);
    service.drain();
}
