//! Result-cache correctness: canonical hashing as the cache key, hit
//! semantics (bit-identical ranks), and LRU eviction under the byte
//! budget — the service-level contract on top of the unit tests in
//! `src/cache.rs`.

use std::sync::Arc;
use std::time::Duration;

use ppbench_core::{DanglingStrategy, PipelineConfig, ValidationLevel, Variant};
use ppbench_gen::GeneratorKind;
use ppbench_serve::{
    config_from_json, JobState, Json, ResultCache, RunSummary, Service, ServiceConfig,
};
use ppbench_sort::SortKey;

fn parse(body: &str) -> PipelineConfig {
    config_from_json(&Json::parse(body).unwrap()).unwrap()
}

#[test]
fn identical_configs_hash_identically_regardless_of_construction() {
    // Builder chain order, JSON field order, and defaults spelled out
    // explicitly must all canonicalize to the same hash.
    let built = PipelineConfig::builder()
        .scale(9)
        .seed(3)
        .variant(Variant::Naive)
        .build();
    let reordered = PipelineConfig::builder()
        .variant(Variant::Naive)
        .seed(3)
        .scale(9)
        .build();
    let from_json = parse(r#"{"variant": "naive", "scale": 9, "seed": 3}"#);
    let explicit_defaults = parse(
        r#"{"scale": 9, "seed": 3, "variant": "naive",
            "edge_factor": 16, "num_files": 1, "generator": "kronecker",
            "permute_vertices": true, "shuffle_edges": false,
            "sort_key": "start", "add_diagonal_to_empty": false,
            "damping": 0.85, "iterations": 20, "dangling": "omit",
            "validation": "invariants"}"#,
    );
    let reference = built.canonical_hash();
    assert_eq!(reference, reordered.canonical_hash());
    assert_eq!(reference, from_json.canonical_hash());
    assert_eq!(reference, explicit_defaults.canonical_hash());
}

#[test]
fn every_changed_field_changes_the_hash() {
    let base = r#"{"scale": 9, "seed": 3}"#;
    let reference = parse(base).canonical_hash();
    let variations = [
        r#"{"scale": 10, "seed": 3}"#,
        r#"{"scale": 9, "seed": 4}"#,
        r#"{"scale": 9, "seed": 3, "edge_factor": 8}"#,
        r#"{"scale": 9, "seed": 3, "variant": "dataframe"}"#,
        r#"{"scale": 9, "seed": 3, "generator": "bter"}"#,
        r#"{"scale": 9, "seed": 3, "sort_key": "start-end"}"#,
        r#"{"scale": 9, "seed": 3, "dangling": "redistribute"}"#,
        r#"{"scale": 9, "seed": 3, "damping": 0.9}"#,
        r#"{"scale": 9, "seed": 3, "iterations": 19}"#,
        r#"{"scale": 9, "seed": 3, "num_files": 2}"#,
        r#"{"scale": 9, "seed": 3, "permute_vertices": false}"#,
        r#"{"scale": 9, "seed": 3, "shuffle_edges": true}"#,
        r#"{"scale": 9, "seed": 3, "add_diagonal_to_empty": true}"#,
        r#"{"scale": 9, "seed": 3, "sort_budget_bytes": 1000}"#,
        r#"{"scale": 9, "seed": 3, "convergence_tolerance": 1e-9}"#,
        r#"{"scale": 9, "seed": 3, "validation": "none"}"#,
    ];
    let mut hashes: Vec<u64> = variations
        .iter()
        .map(|v| parse(v).canonical_hash())
        .collect();
    hashes.push(reference);
    let unique: std::collections::HashSet<u64> = hashes.iter().copied().collect();
    assert_eq!(unique.len(), hashes.len(), "every field must feed the hash");
}

#[test]
fn enum_axes_all_feed_the_hash() {
    let base = PipelineConfig::builder().scale(9);
    let mut hashes = std::collections::HashSet::new();
    for variant in Variant::ALL {
        assert!(hashes.insert(base.clone().variant(variant).build().canonical_hash()));
    }
    for generator in GeneratorKind::ALL {
        hashes.insert(base.clone().generator(generator).build().canonical_hash());
    }
    for dangling in [
        DanglingStrategy::Omit,
        DanglingStrategy::Redistribute,
        DanglingStrategy::Sink,
    ] {
        hashes.insert(base.clone().dangling(dangling).build().canonical_hash());
    }
    for sort_key in [SortKey::Start, SortKey::StartEnd] {
        hashes.insert(base.clone().sort_key(sort_key).build().canonical_hash());
    }
    for validation in [
        ValidationLevel::None,
        ValidationLevel::Invariants,
        ValidationLevel::Eigenvector,
    ] {
        hashes.insert(base.clone().validation(validation).build().canonical_hash());
    }
    // 5 variants + 3 extra generators + 2 extra dangling + 1 extra sort key
    // + 2 extra validation levels (the defaults collapse into the variant
    // loop's entries).
    assert_eq!(hashes.len(), 13, "distinct settings must hash distinctly");
}

#[test]
fn cache_hit_returns_bit_identical_ranks_through_the_service() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        cache_bytes: 4 << 20,
        max_scale: 10,
        max_terminal_jobs: 64,
        work_root: std::env::temp_dir().join(format!("ppbench-cache-e2e-{}", std::process::id())),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let config = || {
        PipelineConfig::builder()
            .scale(7)
            .edge_factor(4)
            .seed(11)
            .build()
    };
    let first = service.submit(config()).unwrap();
    assert!(!first.cached);
    let first_job = service
        .wait(first.id, Duration::from_secs(60))
        .expect("run finishes");
    assert_eq!(first_job.state, JobState::Done);

    let second = service.submit(config()).unwrap();
    assert!(second.cached, "identical config must hit the cache");
    let second_job = service.job(second.id).unwrap();
    assert_eq!(
        second_job.state,
        JobState::Done,
        "cache hit is immediately done"
    );

    let a = first_job.summary.unwrap();
    let b = second_job.summary.unwrap();
    assert!(
        Arc::ptr_eq(&a, &b),
        "the cache returns the stored summary itself"
    );
    assert_eq!(a.ranks.len(), 128);
    assert!(
        a.ranks
            .iter()
            .zip(&b.ranks)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "cached ranks are bit-identical by construction"
    );
}

#[test]
fn lru_eviction_respects_byte_budget_under_churn() {
    fn summary(rank_count: usize) -> Arc<RunSummary> {
        Arc::new(RunSummary {
            record: ppbench_core::RunRecord {
                variant: "optimized".to_string(),
                workload: "pagerank".to_string(),
                scale: 10,
                edges: 1 << 13,
                kernels: [Some((0.1, 8192.0)); 4],
                validation_passed: Some(true),
                threads: None,
                checksum: None,
            },
            ranks: vec![0.125; rank_count],
            total_seconds: 0.5,
        })
    }
    let entry_bytes = summary(1024).approx_bytes();
    let mut cache = ResultCache::new(entry_bytes * 4);
    for hash in 0..100u64 {
        cache.insert(hash, summary(1024));
        assert!(
            cache.used_bytes() <= cache.budget_bytes(),
            "budget violated after insert {hash}: {} > {}",
            cache.used_bytes(),
            cache.budget_bytes()
        );
    }
    assert_eq!(cache.len(), 4, "exactly budget/entry_size entries survive");
    // The survivors are the most recently inserted.
    for hash in 96..100 {
        assert!(cache.contains(hash), "hash {hash} should have survived");
    }
    assert!(!cache.contains(0));

    // Touching an old entry protects it from the next eviction.
    assert!(cache.get(96).is_some());
    cache.insert(1000, summary(1024));
    assert!(cache.contains(96), "recently touched entry survives");
    assert!(!cache.contains(97), "the actual LRU entry was evicted");
}
