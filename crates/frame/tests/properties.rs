//! Property-based tests for the columnar dataframe.

use ppbench_frame::{Frame, Series};
use proptest::prelude::*;

fn arb_frame(max_rows: usize) -> impl Strategy<Value = Frame> {
    proptest::collection::vec((0u64..32, 0u64..32, -10.0f64..10.0), 0..max_rows).prop_map(|rows| {
        let u: Vec<u64> = rows.iter().map(|r| r.0).collect();
        let v: Vec<u64> = rows.iter().map(|r| r.1).collect();
        let w: Vec<f64> = rows.iter().map(|r| r.2).collect();
        Frame::new(vec![
            ("u".into(), Series::U64(u)),
            ("v".into(), Series::U64(v)),
            ("w".into(), Series::F64(w)),
        ])
        .expect("fresh equal-length columns")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sort_by produces a sorted permutation of the rows and keeps every
    /// column aligned.
    #[test]
    fn sort_preserves_rows_and_alignment(f in arb_frame(200)) {
        let sorted = f.sort_by(&["u", "v"]).unwrap();
        prop_assert_eq!(sorted.rows(), f.rows());
        let us = sorted.column("u").unwrap().as_u64().unwrap();
        let vs = sorted.column("v").unwrap().as_u64().unwrap();
        prop_assert!(us.windows(2).zip(vs.windows(2)).all(|(a, b)|
            (a[0], b[0]) <= (a[1], b[1])));
        // Row multiset preserved: compare as sorted (u, v, w-bits) tuples.
        let rows = |fr: &Frame| -> Vec<(u64, u64, u64)> {
            let u = fr.column("u").unwrap().as_u64().unwrap();
            let v = fr.column("v").unwrap().as_u64().unwrap();
            let w = fr.column("w").unwrap().as_f64().unwrap();
            let mut t: Vec<_> = (0..fr.rows())
                .map(|i| (u[i], v[i], w[i].to_bits()))
                .collect();
            t.sort_unstable();
            t
        };
        prop_assert_eq!(rows(&sorted), rows(&f));
    }

    /// argsort is stable: equal keys keep their original relative order.
    #[test]
    fn argsort_is_stable(keys in proptest::collection::vec(0u64..4, 0..150)) {
        let n = keys.len();
        let f = Frame::new(vec![
            ("k".into(), Series::U64(keys.clone())),
            ("idx".into(), Series::U64((0..n as u64).collect())),
        ]).unwrap();
        let sorted = f.sort_by(&["k"]).unwrap();
        let ks = sorted.column("k").unwrap().as_u64().unwrap();
        let idx = sorted.column("idx").unwrap().as_u64().unwrap();
        for i in 1..n {
            if ks[i - 1] == ks[i] {
                prop_assert!(idx[i - 1] < idx[i], "instability at {i}");
            }
        }
    }

    /// group_by_count totals equal the row count and match a naive count.
    #[test]
    fn group_by_count_is_a_histogram(f in arb_frame(200)) {
        let counts = f.group_by_count("u", 32).unwrap();
        prop_assert_eq!(counts.iter().sum::<u64>(), f.rows() as u64);
        let us = f.column("u").unwrap().as_u64().unwrap();
        for (key, &c) in counts.iter().enumerate() {
            prop_assert_eq!(us.iter().filter(|&&u| u == key as u64).count() as u64, c);
        }
    }

    /// filter keeps exactly the masked rows, in order.
    #[test]
    fn filter_selects_exactly_masked(
        f in arb_frame(150),
        mask_seed: u64,
    ) {
        let mask: Vec<bool> =
            (0..f.rows()).map(|i| (mask_seed >> (i % 64)) & 1 == 1).collect();
        let kept = f.filter(&mask).unwrap();
        prop_assert_eq!(kept.rows(), mask.iter().filter(|&&m| m).count());
        let orig = f.column("u").unwrap().as_u64().unwrap();
        let got = kept.column("u").unwrap().as_u64().unwrap();
        let expect: Vec<u64> = orig
            .iter()
            .zip(&mask)
            .filter(|&(_, &m)| m)
            .map(|(&x, _)| x)
            .collect();
        prop_assert_eq!(got, &expect[..]);
    }

    /// Edge-frame round trip through TSV files is the identity.
    #[test]
    fn tsv_roundtrip(pairs in proptest::collection::vec((0u64..1000, 0u64..1000), 0..100)) {
        use ppbench_io::Edge;
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        let f = ppbench_frame::frame_from_edges(&edges);
        let td = ppbench_io::tempdir::TempDir::new("frame-prop").unwrap();
        ppbench_frame::write_edge_tsv(&f, td.path(), 2, None, None,
            ppbench_io::SortState::Unsorted).unwrap();
        let back = ppbench_frame::read_edge_tsv(td.path()).unwrap();
        prop_assert_eq!(ppbench_frame::frame_to_edges(&back).unwrap(), edges);
    }
}
