//! Glue between frames and the benchmark's edge files.
//!
//! The dataframe backend reads kernel files with `read_edge_tsv` (the
//! columnar analogue of `pandas.read_csv(sep='\t')`) and writes them back
//! with `write_edge_tsv`.

use std::path::Path;

use ppbench_io::{Edge, EdgeReader, EdgeWriter, Result as IoResult, SortState};

use crate::{Frame, Series};

/// Column name for start vertices.
pub(crate) const COL_U: &str = "u";
/// Column name for end vertices.
pub(crate) const COL_V: &str = "v";

/// Builds a two-column ("u", "v") frame from an edge slice.
pub fn frame_from_edges(edges: &[Edge]) -> Frame {
    let u: Vec<u64> = edges.iter().map(|e| e.u).collect();
    let v: Vec<u64> = edges.iter().map(|e| e.v).collect();
    Frame::new(vec![
        (COL_U.to_string(), Series::U64(u)),
        (COL_V.to_string(), Series::U64(v)),
    ])
    // ppbench: allow(panic, reason = "the two columns are built right here with equal lengths and distinct names, so Frame::new cannot fail")
    .expect("two equal-length fresh columns")
}

/// Extracts the ("u", "v") columns of a frame as edges.
///
/// # Errors
///
/// Errors (as [`crate::FrameError`]) if the columns are missing or mistyped.
pub fn frame_to_edges(frame: &Frame) -> crate::Result<Vec<Edge>> {
    let u = frame.column(COL_U)?.as_u64()?;
    let v = frame.column(COL_V)?.as_u64()?;
    Ok(u.iter().zip(v).map(|(&a, &b)| Edge::new(a, b)).collect())
}

/// Reads a *plain* TSV edge list — one `u<TAB>v` pair per line, no
/// manifest — into a ("u", "v") frame, so real-world graphs can feed the
/// pipeline in place of the kernel-0 generator.
///
/// Blank lines and lines starting with `#` (the conventional SNAP /
/// edge-list comment marker) are skipped. Vertex ids go through the same
/// bounds-checked [`ppbench_io::atoi`] path the kernel files use: bare
/// ASCII digits, overflow rejected. A trailing `\r` (CRLF files) is
/// tolerated.
///
/// # Errors
///
/// I/O errors, or [`ppbench_io::Error::Parse`] with 1-based line context
/// for any malformed line.
pub fn read_plain_tsv(path: &Path) -> IoResult<Frame> {
    let bytes = std::fs::read(path).map_err(|e| ppbench_io::Error::io(path.to_path_buf(), e))?;
    let mut u = Vec::new();
    let mut v = Vec::new();
    for (idx, raw) in bytes.split(|&b| b == b'\n').enumerate() {
        let line = raw.strip_suffix(b"\r").unwrap_or(raw);
        if line.is_empty() || line[0] == b'#' {
            continue;
        }
        let bad = |msg: &str| ppbench_io::Error::parse(path.to_path_buf(), idx as u64 + 1, msg);
        let (a, used) =
            ppbench_io::atoi::parse_u64_prefix(line).ok_or_else(|| bad("expected start vertex"))?;
        let rest = &line[used..];
        let rest = rest
            .strip_prefix(b"\t")
            .ok_or_else(|| bad("expected tab after start vertex"))?;
        let b = ppbench_io::atoi::parse_u64(rest)
            .ok_or_else(|| bad("expected end vertex after tab"))?;
        u.push(a);
        v.push(b);
    }
    Ok(Frame::new(vec![
        (COL_U.to_string(), Series::U64(u)),
        (COL_V.to_string(), Series::U64(v)),
    ])
    // ppbench: allow(panic, reason = "the two columns are built right here with equal lengths and distinct names, so Frame::new cannot fail")
    .expect("two equal-length fresh columns"))
}

/// Reads a manifest-described edge directory into a ("u", "v") frame.
pub fn read_edge_tsv(dir: &Path) -> IoResult<Frame> {
    let (manifest, iter) = EdgeReader::open_dir(dir)?;
    let cap = manifest.edges as usize;
    let mut u = Vec::with_capacity(cap);
    let mut v = Vec::with_capacity(cap);
    for e in iter {
        let e = e?;
        u.push(e.u);
        v.push(e.v);
    }
    Ok(Frame::new(vec![
        (COL_U.to_string(), Series::U64(u)),
        (COL_V.to_string(), Series::U64(v)),
    ])
    // ppbench: allow(panic, reason = "the two columns are built right here with equal lengths and distinct names, so Frame::new cannot fail")
    .expect("two equal-length fresh columns"))
}

/// Writes the ("u", "v") columns of a frame as an edge directory.
///
/// # Panics
///
/// Panics if the frame lacks well-typed "u"/"v" columns (a programming
/// error in the caller, not a data error).
pub fn write_edge_tsv(
    frame: &Frame,
    dir: &Path,
    num_files: usize,
    scale: Option<u32>,
    vertex_bound: Option<u64>,
    sort_state: SortState,
) -> IoResult<ppbench_io::Manifest> {
    let u = frame
        .column(COL_U)
        .and_then(|s| s.as_u64())
        // ppbench: allow(panic, reason = "documented contract: callers must pass an edge frame; a missing column is a programming error, per the fn docs")
        .expect("frame has u64 'u' column");
    let v = frame
        .column(COL_V)
        .and_then(|s| s.as_u64())
        // ppbench: allow(panic, reason = "documented contract: callers must pass an edge frame; a missing column is a programming error, per the fn docs")
        .expect("frame has u64 'v' column");
    let mut w = EdgeWriter::create(dir, "edges", num_files, frame.rows() as u64)?;
    for (&a, &b) in u.iter().zip(v) {
        w.write(Edge::new(a, b))?;
    }
    w.finish(scale, vertex_bound, sort_state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;

    fn edges() -> Vec<Edge> {
        vec![Edge::new(3, 1), Edge::new(0, 2), Edge::new(3, 3)]
    }

    #[test]
    fn edges_frame_roundtrip() {
        let es = edges();
        let f = frame_from_edges(&es);
        assert_eq!(f.rows(), 3);
        assert_eq!(frame_to_edges(&f).unwrap(), es);
    }

    #[test]
    fn tsv_roundtrip_through_disk() {
        let td = TempDir::new("ppbench-frame").unwrap();
        let f = frame_from_edges(&edges());
        write_edge_tsv(&f, td.path(), 2, Some(2), Some(4), SortState::Unsorted).unwrap();
        let back = read_edge_tsv(td.path()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn frame_to_edges_needs_columns() {
        let f = Frame::new(vec![("x".into(), Series::U64(vec![1]))]).unwrap();
        assert!(frame_to_edges(&f).is_err());
    }

    #[test]
    fn plain_tsv_reads_edges_skipping_comments_and_blanks() {
        let td = TempDir::new("ppbench-frame").unwrap();
        let path = td.join("graph.tsv");
        std::fs::write(
            &path,
            "# SNAP-style header\n3\t1\n\n0\t2\r\n3\t3\n# trailing comment\n",
        )
        .unwrap();
        let f = read_plain_tsv(&path).unwrap();
        assert_eq!(frame_to_edges(&f).unwrap(), edges());
    }

    #[test]
    fn plain_tsv_rejects_malformed_lines_with_context() {
        let td = TempDir::new("ppbench-frame").unwrap();
        let cases = [
            ("1 2\n", "space instead of tab"),
            ("1\t-2\n", "negative vertex"),
            ("1\t2\t3\n", "extra column"),
            ("x\t2\n", "non-numeric"),
            ("1\t2\n18446744073709551616\t0\n", "overflow"),
        ];
        for (body, what) in cases {
            let path = td.join("bad.tsv");
            std::fs::write(&path, body).unwrap();
            let err = read_plain_tsv(&path).unwrap_err();
            assert!(
                matches!(err, ppbench_io::Error::Parse { .. }),
                "{what}: {err}"
            );
        }
        assert!(read_plain_tsv(&td.join("missing.tsv")).is_err());
    }

    #[test]
    fn columnar_sort_then_write_is_sorted_on_disk() {
        let td = TempDir::new("ppbench-frame").unwrap();
        let f = frame_from_edges(&edges()).sort_by(&["u"]).unwrap();
        write_edge_tsv(&f, td.path(), 1, None, None, SortState::ByStart).unwrap();
        let (manifest, got) = EdgeReader::read_dir_all(td.path()).unwrap();
        assert!(manifest.sort_state.is_sorted_by_start());
        assert!(got.windows(2).all(|w| w[0].u <= w[1].u));
    }
}
