//! A minimal columnar dataframe — the "Python with Pandas" execution style.
//!
//! The paper benchmarks a Pandas implementation alongside plain Python: same
//! kernels, but expressed as whole-column operations on a columnar store
//! instead of per-row loops. To reproduce that execution style honestly, the
//! `dataframe` pipeline backend runs on this crate rather than on the tuned
//! native code paths: edges live in named [`Series`] columns inside a
//! [`Frame`], and the kernels are written as `sort_by` / `group_by_count` /
//! `take` / `filter` calls.
//!
//! The feature set is deliberately the minimum the benchmark needs —
//! typed u64/f64 columns, TSV scan/write, argsort-based multi-column sort,
//! group-by count, masked filter and gather — implemented with the classic
//! columnar idioms (argsort + gather, one dense pass per operation).
//!
//! # Example
//!
//! ```
//! use ppbench_frame::{Frame, Series};
//!
//! let f = Frame::new(vec![
//!     ("u".into(), Series::U64(vec![2, 0, 1])),
//!     ("v".into(), Series::U64(vec![20, 10, 30])),
//! ]).unwrap();
//! let sorted = f.sort_by(&["u"]).unwrap();
//! assert_eq!(sorted.column("v").unwrap().as_u64().unwrap(), &[10, 30, 20]);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod frame;
mod series;
mod tsv;

pub use frame::Frame;
pub use series::Series;
pub use tsv::{frame_from_edges, frame_to_edges, read_edge_tsv, read_plain_tsv, write_edge_tsv};

/// Errors from dataframe operations.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Referenced a column that does not exist.
    NoSuchColumn(String),
    /// Two columns (or a column and a mask) had different lengths.
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// A column had the wrong dtype for the operation.
    TypeMismatch(String),
    /// A column name was used twice.
    DuplicateColumn(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NoSuchColumn(name) => write!(f, "no such column: {name:?}"),
            FrameError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            FrameError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Result alias for dataframe operations.
pub type Result<T> = std::result::Result<T, FrameError>;
