//! The frame: an ordered set of equal-length named columns.

use crate::{FrameError, Result, Series};

/// A columnar table.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    columns: Vec<(String, Series)>,
    rows: usize,
}

impl Frame {
    /// Builds a frame from named columns.
    ///
    /// # Errors
    ///
    /// Errors if columns have different lengths or duplicate names.
    pub fn new(columns: Vec<(String, Series)>) -> Result<Self> {
        let rows = columns.first().map_or(0, |(_, s)| s.len());
        let mut seen = std::collections::BTreeSet::new();
        for (name, series) in &columns {
            if series.len() != rows {
                return Err(FrameError::LengthMismatch {
                    expected: rows,
                    actual: series.len(),
                });
            }
            if !seen.insert(name.as_str()) {
                return Err(FrameError::DuplicateColumn(name.clone()));
            }
        }
        Ok(Self { columns, rows })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Result<&Series> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_string()))
    }

    /// Adds (or replaces) a column.
    ///
    /// # Errors
    ///
    /// Errors if the new column's length differs from the frame's row count
    /// (unless the frame is empty of columns).
    pub fn with_column(mut self, name: &str, series: Series) -> Result<Self> {
        if self.columns.is_empty() {
            self.rows = series.len();
        } else if series.len() != self.rows {
            return Err(FrameError::LengthMismatch {
                expected: self.rows,
                actual: series.len(),
            });
        }
        if let Some(slot) = self.columns.iter_mut().find(|(n, _)| n == name) {
            slot.1 = series;
        } else {
            self.columns.push((name.to_string(), series));
        }
        Ok(self)
    }

    /// Stable argsort of the frame by the named u64 columns
    /// (lexicographic, first name most significant).
    pub fn argsort(&self, by: &[&str]) -> Result<Vec<usize>> {
        let keys: Vec<&[u64]> = by
            .iter()
            .map(|n| self.column(n)?.as_u64())
            .collect::<Result<_>>()?;
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.sort_by(|&a, &b| {
            for k in &keys {
                match k[a].cmp(&k[b]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(idx)
    }

    /// Returns the frame sorted by the named u64 columns (argsort + gather —
    /// the canonical columnar sort).
    pub fn sort_by(&self, by: &[&str]) -> Result<Frame> {
        let idx = self.argsort(by)?;
        Ok(self.take(&idx))
    }

    /// Gathers rows by index into a new frame.
    pub fn take(&self, indices: &[usize]) -> Frame {
        Frame {
            columns: self
                .columns
                .iter()
                .map(|(n, s)| (n.clone(), s.take(indices)))
                .collect(),
            rows: indices.len(),
        }
    }

    /// Keeps the rows where `mask` is true.
    ///
    /// # Errors
    ///
    /// Errors if the mask length differs from the row count.
    pub fn filter(&self, mask: &[bool]) -> Result<Frame> {
        let columns = self
            .columns
            .iter()
            .map(|(n, s)| Ok((n.clone(), s.filter(mask)?)))
            .collect::<Result<Vec<_>>>()?;
        let rows = mask.iter().filter(|&&m| m).count();
        Ok(Frame { columns, rows })
    }

    /// Number of distinct row tuples over the named u64 columns — the
    /// columnar `drop_duplicates().shape[0]`.
    ///
    /// # Errors
    ///
    /// Errors if a column is missing or not u64.
    pub fn distinct_rows(&self, by: &[&str]) -> Result<usize> {
        let keys: Vec<&[u64]> = by
            .iter()
            .map(|n| self.column(n)?.as_u64())
            .collect::<Result<_>>()?;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..self.rows {
            let tuple: Vec<u64> = keys.iter().map(|k| k[i]).collect();
            seen.insert(tuple);
        }
        Ok(seen.len())
    }

    /// Renders the first `limit` rows as an aligned text table — the
    /// `head()` every dataframe user reaches for.
    pub fn head(&self, limit: usize) -> String {
        let n = self.rows.min(limit);
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|(name, _)| name.as_str())
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for i in 0..n {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|(_, s)| match s {
                    Series::U64(v) => v[i].to_string(),
                    Series::F64(v) => format!("{:.6}", v[i]),
                })
                .collect();
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        if self.rows > n {
            out.push_str(&format!("... ({} more rows)\n", self.rows - n));
        }
        out
    }

    /// Group-by-count on a u64 column: returns `counts[key] = occurrences`
    /// as a dense vector indexed by key, sized `domain`.
    ///
    /// This is the columnar `value_counts` specialized to dense integer
    /// keys, which is all the benchmark's degree computations need.
    ///
    /// # Errors
    ///
    /// Errors if the column is missing or not u64.
    ///
    /// # Panics
    ///
    /// Panics if a key is `>= domain`.
    pub fn group_by_count(&self, column: &str, domain: u64) -> Result<Vec<u64>> {
        let keys = self.column(column)?.as_u64()?;
        let domain = usize::try_from(domain)
            .map_err(|_| FrameError::TypeMismatch(format!("domain {domain} exceeds usize")))?;
        let mut counts = vec![0u64; domain];
        for &k in keys {
            counts[k as usize] += 1;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(vec![
            ("u".into(), Series::U64(vec![2, 0, 1, 0])),
            ("v".into(), Series::U64(vec![9, 8, 7, 6])),
            ("w".into(), Series::F64(vec![0.1, 0.2, 0.3, 0.4])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths() {
        let err = Frame::new(vec![
            ("a".into(), Series::U64(vec![1])),
            ("b".into(), Series::U64(vec![1, 2])),
        ])
        .unwrap_err();
        assert_eq!(
            err,
            FrameError::LengthMismatch {
                expected: 1,
                actual: 2
            }
        );
    }

    #[test]
    fn construction_checks_duplicates() {
        let err = Frame::new(vec![
            ("a".into(), Series::U64(vec![1])),
            ("a".into(), Series::U64(vec![2])),
        ])
        .unwrap_err();
        assert_eq!(err, FrameError::DuplicateColumn("a".into()));
    }

    #[test]
    fn column_lookup() {
        let f = sample();
        assert_eq!(f.rows(), 4);
        assert_eq!(f.column_names(), vec!["u", "v", "w"]);
        assert_eq!(f.column("v").unwrap().as_u64().unwrap(), &[9, 8, 7, 6]);
        assert!(matches!(f.column("zzz"), Err(FrameError::NoSuchColumn(_))));
    }

    #[test]
    fn sort_by_single_key_is_stable() {
        let f = sample();
        let sorted = f.sort_by(&["u"]).unwrap();
        assert_eq!(sorted.column("u").unwrap().as_u64().unwrap(), &[0, 0, 1, 2]);
        // Stability: the two u=0 rows keep their original order (v=8 then 6).
        assert_eq!(sorted.column("v").unwrap().as_u64().unwrap(), &[8, 6, 7, 9]);
        // f64 columns ride along.
        assert_eq!(
            sorted.column("w").unwrap().as_f64().unwrap(),
            &[0.2, 0.4, 0.3, 0.1]
        );
    }

    #[test]
    fn sort_by_two_keys() {
        let f = Frame::new(vec![
            ("u".into(), Series::U64(vec![1, 0, 1, 0])),
            ("v".into(), Series::U64(vec![5, 9, 2, 1])),
        ])
        .unwrap();
        let sorted = f.sort_by(&["u", "v"]).unwrap();
        assert_eq!(sorted.column("u").unwrap().as_u64().unwrap(), &[0, 0, 1, 1]);
        assert_eq!(sorted.column("v").unwrap().as_u64().unwrap(), &[1, 9, 2, 5]);
    }

    #[test]
    fn sort_by_f64_column_is_type_error() {
        assert!(matches!(
            sample().sort_by(&["w"]),
            Err(FrameError::TypeMismatch(_))
        ));
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let f = sample();
        let kept = f.filter(&[false, true, true, false]).unwrap();
        assert_eq!(kept.rows(), 2);
        assert_eq!(kept.column("u").unwrap().as_u64().unwrap(), &[0, 1]);
    }

    #[test]
    fn group_by_count_dense() {
        let f = sample();
        let counts = f.group_by_count("u", 3).unwrap();
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn distinct_rows_counts_tuples() {
        let f = Frame::new(vec![
            ("u".into(), Series::U64(vec![1, 1, 2, 1])),
            ("v".into(), Series::U64(vec![5, 5, 5, 6])),
        ])
        .unwrap();
        assert_eq!(f.distinct_rows(&["u", "v"]).unwrap(), 3);
        assert_eq!(f.distinct_rows(&["u"]).unwrap(), 2);
        assert!(f.distinct_rows(&["nope"]).is_err());
    }

    #[test]
    fn head_renders_and_truncates() {
        let f = sample();
        let h = f.head(2);
        assert!(h.starts_with("u\tv\tw\n"), "{h}");
        assert!(h.contains("(2 more rows)"), "{h}");
        assert_eq!(f.head(10).matches('\n').count(), 5); // header + 4 rows
    }

    #[test]
    fn with_column_adds_and_replaces() {
        let f = sample()
            .with_column("deg", Series::U64(vec![1, 1, 2, 2]))
            .unwrap()
            .with_column("u", Series::U64(vec![5, 5, 5, 5]))
            .unwrap();
        assert_eq!(f.column("deg").unwrap().as_u64().unwrap(), &[1, 1, 2, 2]);
        assert_eq!(f.column("u").unwrap().as_u64().unwrap(), &[5, 5, 5, 5]);
        assert_eq!(f.column_names().len(), 4);
    }

    #[test]
    fn with_column_on_empty_frame_sets_rows() {
        let f = Frame::new(vec![]).unwrap();
        let f = f.with_column("x", Series::U64(vec![1, 2])).unwrap();
        assert_eq!(f.rows(), 2);
        assert!(f.with_column("y", Series::U64(vec![1])).is_err());
    }

    #[test]
    fn empty_frame_operations() {
        let f = Frame::new(vec![("u".into(), Series::U64(vec![]))]).unwrap();
        assert_eq!(f.rows(), 0);
        assert_eq!(f.sort_by(&["u"]).unwrap().rows(), 0);
        assert_eq!(f.group_by_count("u", 4).unwrap(), vec![0, 0, 0, 0]);
    }
}
