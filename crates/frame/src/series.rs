//! Typed columns.

use crate::{FrameError, Result};

/// A single typed column of a [`crate::Frame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Series {
    /// Unsigned 64-bit integers (vertex ids, counts).
    U64(Vec<u64>),
    /// Doubles (ranks, normalized weights).
    F64(Vec<f64>),
}

impl Series {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Series::U64(v) => v.len(),
            Series::F64(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dtype name ("u64" / "f64").
    pub fn dtype(&self) -> &'static str {
        match self {
            Series::U64(_) => "u64",
            Series::F64(_) => "f64",
        }
    }

    /// Borrows the integer data, or errors if the column is not u64.
    pub fn as_u64(&self) -> Result<&[u64]> {
        match self {
            Series::U64(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected u64 column, found {}",
                other.dtype()
            ))),
        }
    }

    /// Borrows the double data, or errors if the column is not f64.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            Series::F64(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected f64 column, found {}",
                other.dtype()
            ))),
        }
    }

    /// Gathers rows by index: `out[i] = self[indices[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take(&self, indices: &[usize]) -> Series {
        match self {
            Series::U64(v) => Series::U64(indices.iter().map(|&i| v[i]).collect()),
            Series::F64(v) => Series::F64(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Keeps only rows where `mask` is true.
    ///
    /// # Errors
    ///
    /// Errors if `mask.len() != self.len()`.
    pub fn filter(&self, mask: &[bool]) -> Result<Series> {
        if mask.len() != self.len() {
            return Err(FrameError::LengthMismatch {
                expected: self.len(),
                actual: mask.len(),
            });
        }
        Ok(match self {
            Series::U64(v) => Series::U64(
                v.iter()
                    .zip(mask)
                    .filter(|&(_, &m)| m)
                    .map(|(&x, _)| x)
                    .collect(),
            ),
            Series::F64(v) => Series::F64(
                v.iter()
                    .zip(mask)
                    .filter(|&(_, &m)| m)
                    .map(|(&x, _)| x)
                    .collect(),
            ),
        })
    }

    /// Sum of an integer column.
    pub fn sum_u64(&self) -> Result<u64> {
        Ok(self.as_u64()?.iter().sum())
    }

    /// Maximum of an integer column (`None` when empty).
    pub fn max_u64(&self) -> Result<Option<u64>> {
        Ok(self.as_u64()?.iter().copied().max())
    }

    /// Sum of a double column.
    pub fn sum_f64(&self) -> Result<f64> {
        Ok(self.as_f64()?.iter().sum())
    }

    /// Mean of a double column (`None` when empty).
    pub fn mean_f64(&self) -> Result<Option<f64>> {
        let v = self.as_f64()?;
        Ok(if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_dtype() {
        let s = Series::U64(vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.dtype(), "u64");
        assert_eq!(Series::F64(vec![]).dtype(), "f64");
        assert!(Series::F64(vec![]).is_empty());
    }

    #[test]
    fn typed_accessors() {
        let s = Series::U64(vec![4, 5]);
        assert_eq!(s.as_u64().unwrap(), &[4, 5]);
        assert!(s.as_f64().is_err());
        let f = Series::F64(vec![0.5]);
        assert_eq!(f.as_f64().unwrap(), &[0.5]);
        assert!(f.as_u64().is_err());
    }

    #[test]
    fn take_gathers() {
        let s = Series::U64(vec![10, 20, 30]);
        assert_eq!(s.take(&[2, 0, 2]).as_u64().unwrap(), &[30, 10, 30]);
        let f = Series::F64(vec![1.0, 2.0]);
        assert_eq!(f.take(&[1]).as_f64().unwrap(), &[2.0]);
    }

    #[test]
    fn filter_respects_mask() {
        let s = Series::U64(vec![1, 2, 3, 4]);
        let kept = s.filter(&[true, false, true, false]).unwrap();
        assert_eq!(kept.as_u64().unwrap(), &[1, 3]);
    }

    #[test]
    fn filter_length_mismatch_errors() {
        let s = Series::U64(vec![1, 2]);
        assert_eq!(
            s.filter(&[true]),
            Err(FrameError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn aggregates() {
        let s = Series::U64(vec![3, 1, 4]);
        assert_eq!(s.sum_u64().unwrap(), 8);
        assert_eq!(s.max_u64().unwrap(), Some(4));
        assert_eq!(Series::U64(vec![]).max_u64().unwrap(), None);
        assert!(Series::F64(vec![1.0]).sum_u64().is_err());
    }

    #[test]
    fn f64_aggregates() {
        let s = Series::F64(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.sum_f64().unwrap(), 6.0);
        assert_eq!(s.mean_f64().unwrap(), Some(2.0));
        assert_eq!(Series::F64(vec![]).mean_f64().unwrap(), None);
        assert!(Series::U64(vec![1]).sum_f64().is_err());
    }
}
