//! Integration tests for the extension features beyond the strict spec:
//! dangling-node strategies (the appendix's PageRank variants) and the
//! convergence-test stopping mode (§IV.D's "real application" behavior).

use ppbench::core::kernel3::DanglingStrategy;
use ppbench::core::{Pipeline, PipelineConfig, Variant};
use ppbench::io::tempdir::TempDir;
use ppbench::sparse::vector;

fn builder(scale: u32) -> ppbench::core::PipelineConfigBuilder {
    PipelineConfig::builder()
        .scale(scale)
        .edge_factor(8)
        .seed(31)
}

#[test]
fn redistribute_strategy_conserves_mass_end_to_end() {
    let td = TempDir::new("ext").unwrap();
    let cfg = builder(8).dangling(DanglingStrategy::Redistribute).build();
    let r = Pipeline::new(cfg, td.path()).run().unwrap();
    let k3 = r.kernel3.unwrap();
    assert!(
        (k3.mass - 1.0).abs() < 1e-9,
        "strongly preferential PageRank must conserve mass, got {}",
        k3.mass
    );
}

#[test]
fn omit_strategy_leaks_mass_on_kronecker_graphs() {
    // The spec's own behavior, as a baseline for the above: kernel-2
    // filtering leaves dangling rows, so mass decays.
    let td = TempDir::new("ext").unwrap();
    let r = Pipeline::new(builder(8).build(), td.path()).run().unwrap();
    let k3 = r.kernel3.unwrap();
    assert!(k3.mass < 1.0, "expected leakage, got mass {}", k3.mass);
}

#[test]
fn all_backends_agree_under_each_dangling_strategy() {
    for strategy in [
        DanglingStrategy::Omit,
        DanglingStrategy::Redistribute,
        DanglingStrategy::Sink,
    ] {
        let reference = {
            let td = TempDir::new("ext").unwrap();
            let cfg = builder(7).dangling(strategy).build();
            Pipeline::new(cfg, td.path())
                .run()
                .unwrap()
                .kernel3
                .unwrap()
                .ranks
        };
        for variant in [
            Variant::Naive,
            Variant::Dataframe,
            Variant::Parallel,
            Variant::GraphBlas,
        ] {
            let td = TempDir::new("ext").unwrap();
            let cfg = builder(7).dangling(strategy).variant(variant).build();
            let ranks = Pipeline::new(cfg, td.path())
                .run()
                .unwrap()
                .kernel3
                .unwrap()
                .ranks;
            let gap = vector::l1_distance(&ranks, &reference);
            let tol = if variant == Variant::Parallel {
                1e-12
            } else {
                0.0
            };
            assert!(
                gap <= tol,
                "{} under {} diverges by {gap}",
                variant.name(),
                strategy.name()
            );
        }
    }
}

#[test]
fn convergence_mode_stops_early_and_reports_iterations() {
    let td = TempDir::new("ext").unwrap();
    let cfg = builder(7)
        .add_diagonal_to_empty(true)
        .iterations(10_000)
        .convergence_tolerance(1e-10)
        .build();
    let r = Pipeline::new(cfg, td.path()).run().unwrap();
    let k3 = r.kernel3.unwrap();
    assert!(k3.iterations < 10_000, "never converged");
    assert!(k3.final_delta < 1e-10);
    // The throughput metric counts the iterations actually run.
    assert_eq!(k3.timing.work_items, r.edges * k3.iterations as u64);
}

#[test]
fn converged_ranks_are_damping_fixpoint() {
    let td = TempDir::new("ext").unwrap();
    let cfg = builder(6)
        .add_diagonal_to_empty(true)
        .iterations(50_000)
        .convergence_tolerance(1e-14)
        .build();
    let r = Pipeline::new(cfg.clone(), td.path()).run().unwrap();
    let k3 = r.kernel3.unwrap();
    // Re-run a single further step through the spec formula and check the
    // vector no longer moves.
    let backend = Variant::Optimized.backend();
    let k2 = backend
        .kernel2(&cfg, &Pipeline::new(cfg.clone(), td.path()).k1_dir())
        .unwrap();
    let next = ppbench::core::kernel3::step(
        &k3.ranks,
        |x| ppbench::sparse::spmv::vxm(x, &k2.matrix),
        cfg.damping,
    );
    assert!(vector::l1_distance(&next, &k3.ranks) < 1e-12);
}

#[test]
fn sink_strategy_equals_diagonal_repair_pipeline() {
    // Two routes to the same chain: §V matrix repair with Omit, vs plain
    // matrix with the Sink strategy.
    let td1 = TempDir::new("ext").unwrap();
    let td2 = TempDir::new("ext").unwrap();
    let repaired = builder(7).add_diagonal_to_empty(true).build();
    let sink = builder(7).dangling(DanglingStrategy::Sink).build();
    let r1 = Pipeline::new(repaired, td1.path())
        .run()
        .unwrap()
        .kernel3
        .unwrap()
        .ranks;
    let r2 = Pipeline::new(sink, td2.path())
        .run()
        .unwrap()
        .kernel3
        .unwrap()
        .ranks;
    let gap = vector::l1_distance(&r1, &r2);
    assert!(
        gap < 1e-10,
        "matrix repair vs sink strategy diverge by {gap}"
    );
}
