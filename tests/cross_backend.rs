//! Cross-backend integration tests: the paper's central premise is that
//! all implementations of the spec compute the same thing, differing only
//! in speed. These tests enforce it across the four backends, including
//! mixed-backend pipelines (kernels "can be run together or
//! independently").

use ppbench::core::{Pipeline, PipelineConfig, Variant};
use ppbench::io::tempdir::TempDir;
use ppbench::sparse::vector;

fn cfg(scale: u32, variant: Variant) -> PipelineConfig {
    PipelineConfig::builder()
        .scale(scale)
        .edge_factor(8)
        .seed(2016)
        .num_files(3)
        .variant(variant)
        .build()
}

#[test]
fn all_backends_agree_on_ranks() {
    let reference = {
        let td = TempDir::new("xb-ref").unwrap();
        let r = Pipeline::new(cfg(8, Variant::Optimized), td.path())
            .run()
            .unwrap();
        r.kernel3.unwrap().ranks
    };
    for variant in [
        Variant::Naive,
        Variant::Dataframe,
        Variant::Parallel,
        Variant::GraphBlas,
    ] {
        let td = TempDir::new("xb-var").unwrap();
        let r = Pipeline::new(cfg(8, variant), td.path()).run().unwrap();
        let ranks = r.kernel3.unwrap().ranks;
        let gap = vector::l1_distance(&ranks, &reference);
        // Serial backends agree exactly; the parallel gather form only up
        // to reassociation.
        let tol = if variant == Variant::Parallel {
            1e-12
        } else {
            0.0
        };
        assert!(
            gap <= tol,
            "{} diverges from optimized by L1 {gap}",
            variant.name()
        );
    }
}

#[test]
fn parallel_backend_preserves_the_ranking_order() {
    // Beyond numeric closeness: the *ordering* (what applications consume)
    // must be essentially identical across backends.
    let opt = {
        let td = TempDir::new("xb-tau").unwrap();
        Pipeline::new(cfg(8, Variant::Optimized), td.path())
            .run()
            .unwrap()
            .kernel3
            .unwrap()
            .ranks
    };
    let par = {
        let td = TempDir::new("xb-tau").unwrap();
        Pipeline::new(cfg(8, Variant::Parallel), td.path())
            .run()
            .unwrap()
            .kernel3
            .unwrap()
            .ranks
    };
    let tau = ppbench::core::rank::kendall_tau(&opt, &par);
    assert!(tau > 0.9999, "kendall tau {tau}");
    assert_eq!(ppbench::core::rank::top_k_overlap(&opt, &par, 20), 1.0);
}

#[test]
fn serial_backends_bit_identical() {
    let mut streams = Vec::new();
    for variant in [
        Variant::Optimized,
        Variant::Naive,
        Variant::Dataframe,
        Variant::GraphBlas,
    ] {
        let td = TempDir::new("xb-bit").unwrap();
        let r = Pipeline::new(cfg(7, variant), td.path()).run().unwrap();
        let bits: Vec<u64> = r
            .kernel3
            .unwrap()
            .ranks
            .iter()
            .map(|x| x.to_bits())
            .collect();
        streams.push((variant.name(), bits));
    }
    for w in streams.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
    }
}

#[test]
fn mixed_backend_pipeline_composes() {
    // K0 naive → K1 dataframe → K2 optimized → K3 parallel: every handoff
    // goes through the shared file format and manifest.
    let td = TempDir::new("xb-mix").unwrap();
    let base = cfg(7, Variant::Optimized);
    let k0_dir = td.join("k0");
    let k1_dir = td.join("k1");

    Variant::Naive.backend().kernel0(&base, &k0_dir).unwrap();
    Variant::Dataframe
        .backend()
        .kernel1(&base, &k0_dir, &k1_dir)
        .unwrap();
    let k2 = Variant::Optimized
        .backend()
        .kernel2(&base, &k1_dir)
        .unwrap();
    let ranks_mixed = Variant::Parallel
        .backend()
        .kernel3(&base, &k2.matrix)
        .unwrap()
        .ranks;

    // Pure optimized pipeline as reference.
    let td2 = TempDir::new("xb-mix-ref").unwrap();
    let r = Pipeline::new(base, td2.path()).run().unwrap();
    let ranks_ref = r.kernel3.unwrap().ranks;
    let gap = vector::l1_distance(&ranks_mixed, &ranks_ref);
    assert!(gap < 1e-12, "mixed pipeline diverges by {gap}");
}

#[test]
fn kernel2_stats_identical_across_backends() {
    let td = TempDir::new("xb-stats").unwrap();
    let base = cfg(8, Variant::Optimized);
    let k0 = td.join("k0");
    let k1 = td.join("k1");
    Variant::Optimized.backend().kernel0(&base, &k0).unwrap();
    Variant::Optimized
        .backend()
        .kernel1(&base, &k0, &k1)
        .unwrap();
    let reference = Variant::Optimized.backend().kernel2(&base, &k1).unwrap();
    for variant in [
        Variant::Naive,
        Variant::Dataframe,
        Variant::Parallel,
        Variant::GraphBlas,
    ] {
        let out = variant.backend().kernel2(&base, &k1).unwrap();
        assert_eq!(out.stats, reference.stats, "{}", variant.name());
        assert_eq!(out.matrix, reference.matrix, "{}", variant.name());
    }
}

#[test]
fn all_spec_option_combinations_run_on_all_backends() {
    for variant in Variant::ALL {
        for (sort_end, diagonal) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut builder = PipelineConfig::builder()
                .scale(6)
                .edge_factor(4)
                .seed(9)
                .variant(variant)
                .add_diagonal_to_empty(diagonal);
            if sort_end {
                builder = builder.sort_key(ppbench::sort::SortKey::StartEnd);
            }
            let td = TempDir::new("xb-opts").unwrap();
            let r = Pipeline::new(builder.build(), td.path())
                .run()
                .unwrap_or_else(|e| {
                    panic!(
                        "{} sort_end={sort_end} diag={diagonal}: {e}",
                        variant.name()
                    )
                });
            assert!(r.validation.unwrap().passed());
        }
    }
}
