//! Conformance to the benchmark specification (§IV of the paper): the
//! kernel-by-kernel mathematical contracts, checked end-to-end through the
//! public API at a non-trivial scale.

use ppbench::core::{kernel3, Pipeline, PipelineConfig, ValidationLevel};
use ppbench::gen::GeneratorKind;
use ppbench::io::tempdir::TempDir;
use ppbench::io::EdgeReader;
use ppbench::sparse::{ops, vector};

fn run(scale: u32) -> (PipelineConfig, TempDir, ppbench::core::PipelineResult) {
    let cfg = PipelineConfig::builder()
        .scale(scale)
        .seed(1)
        .num_files(4)
        .validation(ValidationLevel::Invariants)
        .build();
    let td = TempDir::new("spec").unwrap();
    let result = Pipeline::new(cfg.clone(), td.path()).run().unwrap();
    (cfg, td, result)
}

#[test]
fn kernel0_writes_m_equals_k_times_n_edges_in_spec_format() {
    let (cfg, td, result) = run(10);
    // M = k·N = 16·2^10.
    assert_eq!(result.kernel0.as_ref().unwrap().edges, 16 << 10);
    assert_eq!(result.kernel0.as_ref().unwrap().files, 4);
    // Files are tab-separated decimal pairs, newline-terminated.
    let manifest = ppbench::io::Manifest::load(&td.path().join("k0")).unwrap();
    let first =
        std::fs::read_to_string(td.path().join("k0").join(&manifest.files[0].name)).unwrap();
    for line in first.lines().take(100) {
        let mut parts = line.split('\t');
        let u: u64 = parts.next().unwrap().parse().unwrap();
        let v: u64 = parts.next().unwrap().parse().unwrap();
        assert!(parts.next().is_none());
        assert!(u < cfg.spec.num_vertices() && v < cfg.spec.num_vertices());
    }
}

#[test]
fn kernel1_output_is_nondecreasing_in_start_vertex_across_files() {
    let (_, td, _) = run(10);
    let (manifest, edges) = EdgeReader::read_dir_all(&td.path().join("k1")).unwrap();
    assert!(manifest.sort_state.is_sorted_by_start());
    assert!(
        edges.windows(2).all(|w| w[0].u <= w[1].u),
        "global order must hold across file boundaries"
    );
}

#[test]
fn kernel2_invariants_from_the_paper() {
    // "Because of collisions, A should have fewer than M non-zero entries,
    // but all the entries in A should sum to M."
    let (cfg, _, result) = run(12);
    let stats = result.kernel2.as_ref().unwrap().stats;
    let m = cfg.spec.num_edges();
    assert_eq!(stats.total_edge_count, m);
    assert!(
        (stats.nnz_before as u64) < m,
        "scale 12 Kronecker must have duplicate edges: nnz {} vs M {m}",
        stats.nnz_before
    );
    // The super-node and leaves exist in a power-law graph.
    assert!(stats.supernode_columns >= 1);
    assert!(stats.leaf_columns > 0);
    assert!(
        stats.max_in_degree > 16,
        "hub should far exceed mean degree"
    );
}

#[test]
fn kernel3_metric_counts_twenty_m() {
    let (cfg, _, result) = run(9);
    let k3 = result.kernel3.as_ref().unwrap();
    assert_eq!(k3.timing.work_items, cfg.spec.num_edges() * 20);
    assert_eq!(k3.ranks.len() as u64, cfg.spec.num_vertices());
}

#[test]
fn eigenvector_validation_passes_at_scale_10() {
    let cfg = PipelineConfig::builder()
        .scale(10)
        .seed(3)
        .add_diagonal_to_empty(true)
        .validation(ValidationLevel::Eigenvector)
        .build();
    let td = TempDir::new("spec-eig").unwrap();
    let result = Pipeline::new(cfg, td.path()).run().unwrap();
    let v = result.validation.unwrap();
    assert!(v.passed(), "{}", v.detail());
    assert!(v.eigen_residual.unwrap() < 0.1);
}

#[test]
fn damping_factor_is_085_and_iterations_20_by_default() {
    assert_eq!(ppbench::core::DAMPING, 0.85);
    assert_eq!(ppbench::core::ITERATIONS, 20);
    let cfg = PipelineConfig::builder().build();
    assert_eq!(cfg.damping, 0.85);
    assert_eq!(cfg.iterations, 20);
    assert_eq!(cfg.spec.edge_factor(), 16);
}

#[test]
fn rank_vector_mass_conserved_with_diagonal_repair() {
    // With the §V diagonal repair there are no dangling rows and the
    // matrix is exactly row-stochastic, so sum(r) stays 1 to roundoff.
    let cfg = PipelineConfig::builder()
        .scale(9)
        .seed(5)
        .add_diagonal_to_empty(true)
        .build();
    let td = TempDir::new("spec-mass").unwrap();
    let result = Pipeline::new(cfg, td.path()).run().unwrap();
    let mass = result.kernel3.unwrap().mass;
    assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
}

#[test]
fn alternative_generators_satisfy_the_same_contracts() {
    for kind in [GeneratorKind::PerfectPowerLaw, GeneratorKind::ErdosRenyi] {
        let cfg = PipelineConfig::builder()
            .scale(8)
            .seed(4)
            .generator(kind)
            .build();
        let td = TempDir::new("spec-gen").unwrap();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        assert!(
            result.validation.unwrap().passed(),
            "generator {} violates invariants",
            kind.name()
        );
    }
}

#[test]
fn pagerank_update_matches_papers_appendix_formula() {
    // One hand-computed step on a 2-vertex graph: A = [[0,1],[1,0]]
    // row-normalized is itself; r0 = (0.25, 0.75), c = 0.85.
    // r1 = c·(r0·A) + (1−c)·sum(r0)/N = 0.85·(0.75, 0.25) + 0.15·1/2
    //    = (0.7125, 0.2875)
    let mut coo = ppbench::sparse::Coo::<u64>::new(2, 2);
    coo.push(0, 1, 1);
    coo.push(1, 0, 1);
    let a = ops::normalize_rows(&coo.compress());
    let r1 = kernel3::step(&[0.25, 0.75], |x| ppbench::sparse::spmv::vxm(x, &a), 0.85);
    assert!((r1[0] - 0.7125).abs() < 1e-15, "{r1:?}");
    assert!((r1[1] - 0.2875).abs() < 1e-15, "{r1:?}");
    assert!((vector::sum(&r1) - 1.0).abs() < 1e-15);
}
