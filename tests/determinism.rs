//! Determinism and reproducibility: a benchmark must produce the same
//! answer for the same configuration on every run, thread count, and
//! chunking choice.

use ppbench::core::{Pipeline, PipelineConfig, Variant};
use ppbench::gen::{EdgeGenerator, GeneratorKind, GraphSpec};
use ppbench::io::tempdir::TempDir;

fn ranks_for(cfg: PipelineConfig) -> Vec<u64> {
    let td = TempDir::new("det").unwrap();
    Pipeline::new(cfg, td.path())
        .run()
        .unwrap()
        .kernel3
        .unwrap()
        .ranks
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

fn cfg(seed: u64, variant: Variant) -> PipelineConfig {
    PipelineConfig::builder()
        .scale(7)
        .edge_factor(8)
        .seed(seed)
        .variant(variant)
        .build()
}

#[test]
fn same_config_same_bits() {
    for variant in [Variant::Optimized, Variant::Naive, Variant::Dataframe] {
        let a = ranks_for(cfg(77, variant));
        let b = ranks_for(cfg(77, variant));
        assert_eq!(a, b, "{} not reproducible", variant.name());
    }
}

#[test]
fn parallel_backend_reproducible_across_runs() {
    // Even with rayon in the loop, the gather reduction order per vertex is
    // fixed, so repeated runs agree bit for bit.
    let a = ranks_for(cfg(77, Variant::Parallel));
    let b = ranks_for(cfg(77, Variant::Parallel));
    assert_eq!(a, b);
}

#[test]
fn different_seed_different_graph_and_ranks() {
    let a = ranks_for(cfg(1, Variant::Optimized));
    let b = ranks_for(cfg(2, Variant::Optimized));
    assert_ne!(a, b);
}

#[test]
fn generation_independent_of_chunking() {
    let spec = GraphSpec::new(9, 8);
    for kind in GeneratorKind::ALL {
        let g = kind.build(spec, 5);
        let whole = g.edges();
        for chunk in [1u64, 7, 64, 1000, spec.num_edges()] {
            assert_eq!(
                g.edges_parallel(chunk),
                whole,
                "{} differs at chunk {chunk}",
                kind.name()
            );
        }
    }
}

#[test]
fn rank_init_depends_only_on_seed() {
    use ppbench::core::kernel3::init_ranks;
    assert_eq!(init_ranks(100, 5), init_ranks(100, 5));
    assert_ne!(init_ranks(100, 5), init_ranks(100, 6));
    // And not on the generator stream: two different generator kinds with
    // the same master seed initialize ranks identically.
    let a = {
        let td = TempDir::new("det-init").unwrap();
        let cfg = PipelineConfig::builder()
            .scale(6)
            .edge_factor(4)
            .seed(5)
            .build();
        Pipeline::new(cfg, td.path()).run().unwrap()
    };
    let b = {
        let td = TempDir::new("det-init").unwrap();
        let cfg = PipelineConfig::builder()
            .scale(6)
            .edge_factor(4)
            .seed(5)
            .generator(GeneratorKind::ErdosRenyi)
            .build();
        Pipeline::new(cfg, td.path()).run().unwrap()
    };
    // Different graphs → different ranks, but both pipelines completed and
    // validated, proving seed-derived streams do not collide.
    assert!(a.validation.unwrap().passed());
    assert!(b.validation.unwrap().passed());
}
