//! Workload integration tests: the GAP-style analytics kernels must run
//! through the same four-kernel pipeline as PageRank — same kernels 0–2,
//! same validation machinery, same run records — and be bit-deterministic
//! across runs, variants, and thread-pool sizes.

use ppbench::core::{Pipeline, PipelineConfig, Variant, Workload};
use ppbench::io::tempdir::TempDir;

fn cfg(workload: Workload, variant: Variant) -> PipelineConfig {
    PipelineConfig::builder()
        .scale(7)
        .edge_factor(8)
        .seed(2016)
        .num_files(3)
        .workload(workload)
        .variant(variant)
        .build()
}

const ALGO: [Workload; 4] = [Workload::Bfs, Workload::Cc, Workload::Sssp, Workload::Tc];

#[test]
fn every_workload_runs_the_full_pipeline_and_validates() {
    for workload in ALGO {
        let td = TempDir::new("wl-run").unwrap();
        let result = Pipeline::new(cfg(workload, Variant::Optimized), td.path())
            .run()
            .unwrap();
        assert_eq!(result.workload, workload.name());
        assert!(
            result.kernel3.is_none(),
            "{}: the PageRank slot must stay empty",
            workload.name()
        );
        let algo = result.algo.as_ref().expect("algo outcome");
        assert_eq!(algo.workload, workload.name());
        let report = result.validation.as_ref().expect("validation ran");
        assert!(report.passed(), "{}: {report:?}", workload.name());
        assert!(
            result
                .summary()
                .contains(&format!("K3 {}", workload.name())),
            "summary must name the workload"
        );
    }
}

#[test]
fn workload_outputs_are_bit_identical_across_runs_and_variants() {
    for workload in ALGO {
        let mut fingerprints = Vec::new();
        for variant in [Variant::Optimized, Variant::Optimized, Variant::Naive] {
            let td = TempDir::new("wl-det").unwrap();
            let result = Pipeline::new(cfg(workload, variant), td.path())
                .run()
                .unwrap();
            let algo = result.algo.expect("algo outcome");
            fingerprints.push((algo.checksum, algo.stat, algo.source, algo.output_len));
        }
        assert_eq!(
            fingerprints[0],
            fingerprints[1],
            "{}: repeat run diverged",
            workload.name()
        );
        assert_eq!(
            fingerprints[0],
            fingerprints[2],
            "{}: naive oracle diverged from optimized",
            workload.name()
        );
    }
}

#[test]
fn tsv_ingestion_feeds_any_workload() {
    // A bidirectional triangle (every column keeps in-degree 2) plus a
    // higher-in-degree supernode column 7 that absorbs kernel 2's
    // max-in-degree filter, so the triangle survives to kernel 3.
    let td = TempDir::new("wl-tsv").unwrap();
    let tsv = td.join("edges.tsv");
    let mut text = String::from("# hand-built filter-proof graph\n");
    for (u, v) in [
        (0u32, 1u32),
        (1, 0),
        (1, 2),
        (2, 1),
        (2, 0),
        (0, 2),
        (4, 7),
        (5, 7),
        (6, 7),
    ] {
        text.push_str(&format!("{u}\t{v}\n"));
    }
    std::fs::write(&tsv, text).unwrap();

    let tc_cfg = PipelineConfig::builder()
        .scale(3)
        .edge_factor(2)
        .seed(1)
        .workload(Workload::Tc)
        .input_tsv(&tsv)
        .build();
    let run_dir = td.join("tc-run");
    let result = Pipeline::new(tc_cfg, &run_dir).run().unwrap();
    assert_eq!(
        result.kernel0.as_ref().unwrap().edges,
        9,
        "file edge count wins"
    );
    let algo = result.algo.expect("algo outcome");
    assert_eq!(algo.stat, 1, "exactly the hand-built triangle");
    assert!(result.validation.as_ref().unwrap().passed());

    // The same file drives the default PageRank workload unchanged.
    let pr_cfg = PipelineConfig::builder()
        .scale(3)
        .edge_factor(2)
        .seed(1)
        .input_tsv(&tsv)
        .build();
    let pr_dir = td.join("pr-run");
    let result = Pipeline::new(pr_cfg, &pr_dir).run().unwrap();
    assert!(result.kernel3.is_some());
    assert!(result.algo.is_none());
    assert!(result.validation.as_ref().unwrap().passed());
}
