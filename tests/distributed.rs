//! Facade-level integration tests of the simulated distributed pipeline:
//! the paper's parallel decomposition must agree with the serial pipeline
//! through the public `ppbench::dist` API.

use ppbench::core::{rank, Pipeline, PipelineConfig, ValidationLevel, Variant};
use ppbench::dist::{run_distributed, DistConfig};
use ppbench::io::tempdir::TempDir;
use ppbench::sparse::vector;

fn cfg(scale: u32) -> PipelineConfig {
    PipelineConfig::builder()
        .scale(scale)
        .edge_factor(8)
        .seed(23)
        .validation(ValidationLevel::None)
        .build()
}

#[test]
fn distributed_ranking_matches_every_serial_backend() {
    let base = cfg(8);
    let dist = run_distributed(&DistConfig {
        pipeline: base.clone(),
        workers: 4,
    });
    for variant in [Variant::Optimized, Variant::Naive, Variant::Dataframe] {
        let td = TempDir::new("dist-facade").unwrap();
        let mut c = base.clone();
        c.variant = variant;
        let serial = Pipeline::new(c, td.path())
            .run()
            .unwrap()
            .kernel3
            .unwrap()
            .ranks;
        let gap = vector::l1_distance(&dist.ranks, &serial);
        assert!(gap < 1e-12, "{}: L1 gap {gap}", variant.name());
        assert!(rank::kendall_tau(&dist.ranks, &serial) > 0.99999);
    }
}

#[test]
fn distributed_nnz_matches_serial_filter() {
    let base = cfg(7);
    let dist = run_distributed(&DistConfig {
        pipeline: base.clone(),
        workers: 3,
    });
    let td = TempDir::new("dist-facade").unwrap();
    let serial = Pipeline::new(base, td.path()).run().unwrap();
    assert_eq!(dist.nnz_after, serial.kernel2.unwrap().stats.nnz_after);
}

#[test]
fn worker_count_does_not_change_the_answer() {
    let base = cfg(7);
    let reference = run_distributed(&DistConfig {
        pipeline: base.clone(),
        workers: 2,
    });
    for workers in [3usize, 6, 7] {
        let out = run_distributed(&DistConfig {
            pipeline: base.clone(),
            workers,
        });
        let gap = vector::l1_distance(&out.ranks, &reference.ranks);
        assert!(gap < 1e-12, "{workers} workers: gap {gap}");
        assert_eq!(out.nnz_after, reference.nnz_after);
    }
}

#[test]
fn shuffle_traffic_scales_with_worker_count() {
    let base = cfg(7);
    let w2 = run_distributed(&DistConfig {
        pipeline: base.clone(),
        workers: 2,
    });
    let w8 = run_distributed(&DistConfig {
        pipeline: base,
        workers: 8,
    });
    // (W−1)/W of the edges move: 1/2 at W=2, 7/8 at W=8 → ratio 7/4.
    let ratio = w8.comm_k1.bytes as f64 / w2.comm_k1.bytes as f64;
    assert!(
        (1.55..1.95).contains(&ratio),
        "K1 traffic ratio {ratio}, expected ≈ 1.75"
    );
}
