//! Generator-focused integration tests: every generator kind must drive the
//! full pipeline, and the Kronecker output must pass its statistical
//! validator end-to-end (§V's "validation of all kernels" concern).

use ppbench::core::{Pipeline, PipelineConfig, ValidationLevel};
use ppbench::gen::{validate, EdgeGenerator, GeneratorKind, GraphSpec, Kronecker, KroneckerProbs};
use ppbench::io::tempdir::TempDir;
use ppbench::io::EdgeReader;

#[test]
fn every_generator_kind_drives_the_full_pipeline() {
    for kind in GeneratorKind::ALL {
        let cfg = PipelineConfig::builder()
            .scale(7)
            .edge_factor(8)
            .seed(12)
            .generator(kind)
            .add_diagonal_to_empty(true)
            .validation(ValidationLevel::Eigenvector)
            .build();
        let td = TempDir::new("gen-integration").unwrap();
        let result = Pipeline::new(cfg, td.path()).run().unwrap();
        let v = result.validation.unwrap();
        assert!(v.passed(), "{}: {}", kind.name(), v.detail());
    }
}

#[test]
fn kernel0_files_pass_the_statistical_validator() {
    // Write kernel-0 output with the pipeline, read it back from disk, and
    // run the generator validator over what is actually on storage.
    let spec = GraphSpec::new(10, 16);
    let cfg = PipelineConfig::builder()
        .scale(10)
        .seed(77)
        .permute_vertices(false) // marginals are defined on raw labels
        .validation(ValidationLevel::None)
        .build();
    let td = TempDir::new("gen-integration").unwrap();
    let pipeline = Pipeline::new(cfg, td.path());
    pipeline.run_through(0).unwrap();
    let (_, edges) = EdgeReader::read_dir_all(&pipeline.k0_dir()).unwrap();

    let structure = validate::check_structure(&spec, &edges);
    assert!(structure.passed(), "{}", structure.detail());
    let marginals =
        validate::check_kronecker_marginals(&spec, &KroneckerProbs::default(), &edges, 0.02);
    assert!(marginals.passed(), "{}", marginals.detail());
    let dupes = validate::check_duplicate_fraction(&spec, &edges);
    assert!(dupes.passed(), "{}", dupes.detail());
}

#[test]
fn custom_probabilities_flow_through_the_validator() {
    // Generate with non-default initiator probabilities and confirm the
    // validator checks against the *configured* ones, not the defaults.
    let spec = GraphSpec::new(10, 8);
    let probs = KroneckerProbs {
        a: 0.45,
        b: 0.25,
        c: 0.2,
    };
    let edges = Kronecker::with_probs(spec, 9, probs)
        .without_vertex_permutation()
        .edges();
    let right = validate::check_kronecker_marginals(&spec, &probs, &edges, 0.02);
    assert!(right.passed(), "{}", right.detail());
    let wrong =
        validate::check_kronecker_marginals(&spec, &KroneckerProbs::default(), &edges, 0.02);
    assert!(
        !wrong.passed(),
        "default probs should not match a custom graph"
    );
}

#[test]
fn bter_pipeline_produces_community_biased_ranks() {
    // BTER is the one generator with community structure; the pipeline must
    // still validate, and the graph must differ structurally from ER.
    let cfg = PipelineConfig::builder()
        .scale(9)
        .edge_factor(8)
        .seed(4)
        .generator(GeneratorKind::Bter)
        .build();
    let td = TempDir::new("gen-integration").unwrap();
    let result = Pipeline::new(cfg, td.path()).run().unwrap();
    assert!(result.validation.unwrap().passed());
    let stats = result.kernel2.unwrap().stats;
    // Community blocks concentrate edges → duplicates → nnz < M.
    assert!((stats.nnz_before as u64) < result.edges);
}
