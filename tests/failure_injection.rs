//! Failure injection: a benchmark harness that silently produces wrong
//! numbers is worse than one that crashes. These tests corrupt the
//! pipeline's on-disk state between kernels and check every corruption is
//! caught with a useful error.

use ppbench::core::{PipelineConfig, Variant};
use ppbench::io::tempdir::TempDir;
use ppbench::io::Manifest;

fn cfg() -> PipelineConfig {
    PipelineConfig::builder()
        .scale(6)
        .edge_factor(4)
        .seed(8)
        .num_files(2)
        .build()
}

fn prepared_dirs(td: &TempDir) -> (std::path::PathBuf, std::path::PathBuf) {
    let backend = Variant::Optimized.backend();
    let k0 = td.join("k0");
    let k1 = td.join("k1");
    backend.kernel0(&cfg(), &k0).unwrap();
    backend.kernel1(&cfg(), &k0, &k1).unwrap();
    (k0, k1)
}

#[test]
fn kernel1_on_missing_directory_fails_cleanly() {
    let td = TempDir::new("fail").unwrap();
    let err = Variant::Optimized
        .backend()
        .kernel1(&cfg(), &td.join("does-not-exist"), &td.join("out"))
        .unwrap_err();
    assert!(err.to_string().contains("manifest"), "{err}");
}

#[test]
fn kernel2_on_unsorted_input_is_a_contract_error_for_every_backend() {
    let td = TempDir::new("fail").unwrap();
    let k0 = td.join("k0");
    Variant::Optimized.backend().kernel0(&cfg(), &k0).unwrap();
    for variant in Variant::ALL {
        let err = variant.backend().kernel2(&cfg(), &k0).unwrap_err();
        assert!(
            err.to_string().contains("sorted"),
            "{}: {err}",
            variant.name()
        );
    }
}

#[test]
fn truncated_edge_file_detected() {
    let td = TempDir::new("fail").unwrap();
    let (_, k1) = prepared_dirs(&td);
    // Chop the first file in half, mid-line.
    let manifest = Manifest::load(&k1).unwrap();
    let path = k1.join(&manifest.files[0].name);
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() / 2 - 1]).unwrap();
    let err = Variant::Optimized
        .backend()
        .kernel2(&cfg(), &k1)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("parse") || msg.contains("digest") || msg.contains("edge"),
        "unhelpful error: {msg}"
    );
}

#[test]
fn garbage_line_reported_with_location() {
    let td = TempDir::new("fail").unwrap();
    let (_, k1) = prepared_dirs(&td);
    let manifest = Manifest::load(&k1).unwrap();
    let path = k1.join(&manifest.files[1].name);
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.insert_str(0, "12\tnot-a-number\n");
    std::fs::write(&path, text).unwrap();
    let err = Variant::Optimized
        .backend()
        .kernel2(&cfg(), &k1)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&manifest.files[1].name),
        "no file name in: {msg}"
    );
    assert!(msg.contains(":1"), "no line number in: {msg}");
}

#[test]
fn manifest_edge_count_mismatch_detected() {
    let td = TempDir::new("fail").unwrap();
    let (_, k1) = prepared_dirs(&td);
    // Append an extra valid edge the manifest does not know about.
    let manifest = Manifest::load(&k1).unwrap();
    let path = k1.join(&manifest.files[0].name);
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("1\t1\n");
    std::fs::write(&path, text).unwrap();
    let err = Variant::Optimized
        .backend()
        .kernel2(&cfg(), &k1)
        .unwrap_err();
    // Caught either as a digest mismatch or as a sort-order violation at
    // the injected edge, depending on where the edge lands.
    let msg = err.to_string();
    assert!(msg.contains("digest") || msg.contains("sorted"), "{msg}");
}

#[test]
fn deleted_manifest_detected() {
    let td = TempDir::new("fail").unwrap();
    let (_, k1) = prepared_dirs(&td);
    std::fs::remove_file(k1.join("manifest.tsv")).unwrap();
    for variant in Variant::ALL {
        assert!(
            variant.backend().kernel2(&cfg(), &k1).is_err(),
            "{} ignored a missing manifest",
            variant.name()
        );
    }
}

#[test]
fn forged_sort_state_passes_contract_but_fails_construction() {
    // A manifest that *claims* sorted order over unsorted data: the
    // contract check passes (it trusts the manifest), but the optimized
    // backend's sorted-input construction catches the lie.
    let td = TempDir::new("fail").unwrap();
    let k0 = td.join("k0");
    Variant::Optimized.backend().kernel0(&cfg(), &k0).unwrap();
    let mut manifest = Manifest::load(&k0).unwrap();
    manifest.sort_state = ppbench::io::SortState::ByStart;
    manifest.save(&k0).unwrap();
    let result = std::panic::catch_unwind(|| Variant::Optimized.backend().kernel2(&cfg(), &k0));
    assert!(
        result.is_err() || result.unwrap().is_err(),
        "forged sort state must not produce a silent wrong matrix"
    );
}
