//! Out-of-core kernel 1: the paper requires an external algorithm "if u
//! and v are too large to fit in memory". These tests force that path and
//! check it changes nothing but the memory profile.

use ppbench::core::{Pipeline, PipelineConfig};
use ppbench::io::tempdir::TempDir;

#[test]
fn external_sort_pipeline_equals_in_memory_pipeline() {
    let in_memory = PipelineConfig::builder()
        .scale(8)
        .edge_factor(8)
        .seed(13)
        .build();
    let spilled = PipelineConfig::builder()
        .scale(8)
        .edge_factor(8)
        .seed(13)
        .sort_budget_bytes(1600) // 2048 edges = 32 KiB → ~21 spill runs
        .build();

    let td1 = TempDir::new("ooc-mem").unwrap();
    let td2 = TempDir::new("ooc-ext").unwrap();
    let r_mem = Pipeline::new(in_memory, td1.path()).run().unwrap();
    let r_ext = Pipeline::new(spilled, td2.path()).run().unwrap();

    assert!(!r_mem.kernel1.as_ref().unwrap().out_of_core);
    assert!(r_ext.kernel1.as_ref().unwrap().out_of_core);

    // Both stable sorts: identical sorted streams, identical ranks.
    assert!(r_mem
        .kernel1
        .as_ref()
        .unwrap()
        .digest
        .same_stream(&r_ext.kernel1.as_ref().unwrap().digest));
    let bits = |r: &ppbench::core::PipelineResult| -> Vec<u64> {
        r.kernel3
            .as_ref()
            .unwrap()
            .ranks
            .iter()
            .map(|x| x.to_bits())
            .collect()
    };
    assert_eq!(bits(&r_mem), bits(&r_ext));
}

#[test]
fn budget_larger_than_input_stays_in_memory() {
    let cfg = PipelineConfig::builder()
        .scale(6)
        .edge_factor(4)
        .seed(13)
        .sort_budget_bytes(1_000_000)
        .build();
    let td = TempDir::new("ooc-big").unwrap();
    let r = Pipeline::new(cfg, td.path()).run().unwrap();
    assert!(!r.kernel1.as_ref().unwrap().out_of_core);
    assert!(r.validation.unwrap().passed());
}

#[test]
fn pathological_budget_of_one_edge_still_sorts() {
    let cfg = PipelineConfig::builder()
        .scale(4)
        .edge_factor(2)
        .seed(13)
        .sort_budget_bytes(1)
        .build();
    let td = TempDir::new("ooc-one").unwrap();
    let r = Pipeline::new(cfg, td.path()).run().unwrap();
    assert!(r.kernel1.as_ref().unwrap().out_of_core);
    assert!(r.validation.unwrap().passed());
}
